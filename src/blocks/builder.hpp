// A fluent C++ DSL for assembling block scripts.
//
// This is the "script editor" of the reproduction: where a Snap! user drags
// blocks together, a C++ user writes
//
//   using namespace psnap::build;
//   auto script = scriptOf({
//       setVar("result", parallelMap(ring(product(empty(), 10)),
//                                    listOf({3, 7, 8}))),
//       say(getVar("result")),
//   });
//
// Every helper returns a BlockPtr (a reporter or command block); the `In`
// wrapper converts C++ literals, blocks, and scripts into input slots
// implicitly so nesting reads like the visual language.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "blocks/block.hpp"
#include "blocks/registry.hpp"

namespace psnap::build {

using blocks::Block;
using blocks::BlockPtr;
using blocks::Input;
using blocks::Script;
using blocks::ScriptPtr;
using blocks::Value;

/// Implicit-conversion wrapper so helper calls accept literals, nested
/// blocks, scripts, and explicit Inputs interchangeably.
struct In {
  Input input;

  In(Input i) : input(std::move(i)) {}                    // NOLINT
  In(double n) : input(Value(n)) {}                       // NOLINT
  In(int n) : input(Value(n)) {}                          // NOLINT
  In(long n) : input(Value(static_cast<double>(n))) {}    // NOLINT
  In(long long n) : input(Value(n)) {}                    // NOLINT
  In(size_t n) : input(Value(n)) {}                       // NOLINT
  In(bool b) : input(Value(b)) {}                         // NOLINT
  In(const char* s) : input(Value(s)) {}                  // NOLINT
  In(std::string s) : input(Value(std::move(s))) {}       // NOLINT
  In(Value v) : input(std::move(v)) {}                    // NOLINT
  In(BlockPtr b) : input(std::move(b)) {}                 // NOLINT
  In(ScriptPtr s) : input(std::move(s)) {}                // NOLINT
};

/// The grey empty slot (implicit ring parameter).
inline In empty() { return In(Input::empty()); }
/// A collapsed optional slot (e.g. parallelForEach's "in parallel" input
/// collapsed selects sequential mode, paper Fig. 8b).
inline In collapsed() { return In(Input::collapsed()); }
/// An expanded-but-blank optional slot (use the block's default).
inline In blank() { return In(Value()); }

/// Build an arbitrary block by opcode.
BlockPtr blk(const std::string& opcode, std::vector<In> inputs = {});

/// Build a script from a block sequence.
ScriptPtr scriptOf(std::vector<BlockPtr> blocks);

// --- operators -----------------------------------------------------------
inline BlockPtr sum(In a, In b) { return blk("reportSum", {a, b}); }
inline BlockPtr difference(In a, In b) {
  return blk("reportDifference", {a, b});
}
inline BlockPtr product(In a, In b) { return blk("reportProduct", {a, b}); }
inline BlockPtr quotient(In a, In b) { return blk("reportQuotient", {a, b}); }
inline BlockPtr modulus(In a, In b) { return blk("reportModulus", {a, b}); }
inline BlockPtr power(In a, In b) { return blk("reportPower", {a, b}); }
inline BlockPtr round_(In a) { return blk("reportRound", {a}); }
inline BlockPtr monadic(const std::string& fn, In a) {
  return blk("reportMonadic", {In(fn), a});
}
inline BlockPtr pickRandom(In lo, In hi) {
  return blk("reportRandom", {lo, hi});
}
inline BlockPtr equals(In a, In b) { return blk("reportEquals", {a, b}); }
inline BlockPtr lessThan(In a, In b) { return blk("reportLessThan", {a, b}); }
inline BlockPtr greaterThan(In a, In b) {
  return blk("reportGreaterThan", {a, b});
}
inline BlockPtr and_(In a, In b) { return blk("reportAnd", {a, b}); }
inline BlockPtr or_(In a, In b) { return blk("reportOr", {a, b}); }
inline BlockPtr not_(In a) { return blk("reportNot", {a}); }
inline BlockPtr ifElseReporter(In cond, In thenV, In elseV) {
  return blk("reportIfElse", {cond, thenV, elseV});
}
inline BlockPtr join(std::vector<In> parts) {
  return blk("reportJoinWords", std::move(parts));
}
inline BlockPtr letter(In index, In text) {
  return blk("reportLetter", {index, text});
}
inline BlockPtr textLength(In text) {
  return blk("reportStringSize", {text});
}
inline BlockPtr splitText(In text, In sep) {
  return blk("reportSplit", {text, sep});
}
inline BlockPtr isA(In value, const std::string& type) {
  return blk("reportIsA", {value, In(type)});
}
inline BlockPtr identity(In value) { return blk("reportIdentity", {value}); }

// --- variables -------------------------------------------------------------
inline BlockPtr getVar(const std::string& name) {
  return blk("reportGetVar", {In(name)});
}
inline BlockPtr setVar(const std::string& name, In value) {
  return blk("doSetVar", {In(name), value});
}
inline BlockPtr changeVar(const std::string& name, In delta) {
  return blk("doChangeVar", {In(name), delta});
}
BlockPtr declareVars(const std::vector<std::string>& names);

// --- lists -------------------------------------------------------------
BlockPtr listOf(std::vector<In> items);
inline BlockPtr itemOf(In index, In list) {
  return blk("reportListItem", {index, list});
}
inline BlockPtr lengthOf(In list) {
  return blk("reportListLength", {list});
}
inline BlockPtr contains(In list, In probe) {
  return blk("reportListContainsItem", {list, probe});
}
inline BlockPtr indexOf(In probe, In list) {
  return blk("reportListIndex", {probe, list});
}
inline BlockPtr numbersFromTo(In lo, In hi) {
  return blk("reportNumbers", {lo, hi});
}
inline BlockPtr sorted(In list) { return blk("reportSorted", {list}); }
inline BlockPtr addToList(In value, In list) {
  return blk("doAddToList", {value, list});
}
inline BlockPtr deleteOfList(In index, In list) {
  return blk("doDeleteFromList", {index, list});
}
inline BlockPtr insertInList(In value, In index, In list) {
  return blk("doInsertInList", {value, index, list});
}
inline BlockPtr replaceInList(In index, In list, In value) {
  return blk("doReplaceInList", {index, list, value});
}

// --- rings ---------------------------------------------------------------
/// Ringify a reporter expression (the grey ring of Fig. 4a). Formal names
/// optional; with none, empty slots act as implicit parameters.
BlockPtr ring(In expression, std::vector<std::string> formals = {});
/// Ringify a command script.
BlockPtr ringScript(ScriptPtr script, std::vector<std::string> formals = {});
/// The identity ring (used for MapReduce's pass-through phases).
BlockPtr identityRing();

// --- higher-order functions ------------------------------------------------
inline BlockPtr mapOver(In ringIn, In list) {
  return blk("reportMap", {ringIn, list});
}
inline BlockPtr keepFrom(In ringIn, In list) {
  return blk("reportKeep", {ringIn, list});
}
inline BlockPtr combineUsing(In list, In ringIn) {
  return blk("reportCombine", {list, ringIn});
}
inline BlockPtr forEach(const std::string& var, In list, ScriptPtr body) {
  return blk("doForEach", {In(var), list, In(std::move(body))});
}
BlockPtr callRing(In ringIn, std::vector<In> args = {});
BlockPtr runRing(In ringIn, std::vector<In> args = {});

// --- control -----------------------------------------------------------
inline BlockPtr forever(ScriptPtr body) {
  return blk("doForever", {In(std::move(body))});
}
inline BlockPtr repeat(In count, ScriptPtr body) {
  return blk("doRepeat", {count, In(std::move(body))});
}
inline BlockPtr forLoop(const std::string& var, In from, In to,
                        ScriptPtr body) {
  return blk("doFor", {In(var), from, to, In(std::move(body))});
}
inline BlockPtr doIf(In cond, ScriptPtr body) {
  return blk("doIf", {cond, In(std::move(body))});
}
inline BlockPtr doIfElse(In cond, ScriptPtr thenS, ScriptPtr elseS) {
  return blk("doIfElse", {cond, In(std::move(thenS)), In(std::move(elseS))});
}
inline BlockPtr repeatUntil(In cond, ScriptPtr body) {
  return blk("doUntil", {cond, In(std::move(body))});
}
inline BlockPtr wait(In seconds) { return blk("doWait", {seconds}); }
inline BlockPtr waitUntil(In cond) { return blk("doWaitUntil", {cond}); }
inline BlockPtr busyWork(In frames) { return blk("doBusyWork", {frames}); }
inline BlockPtr warp(ScriptPtr body) { return blk("doWarp", {In(std::move(body))}); }
inline BlockPtr report(In value) { return blk("doReport", {value}); }
inline BlockPtr stopThis() { return blk("doStopThis"); }
inline BlockPtr broadcast(In message) {
  return blk("doBroadcast", {message});
}
inline BlockPtr broadcastAndWait(In message) {
  return blk("doBroadcastAndWait", {message});
}
inline BlockPtr createCloneOf(In name) { return blk("createClone", {name}); }
inline BlockPtr removeClone() { return blk("removeClone"); }

// --- hats ---------------------------------------------------------------
inline BlockPtr whenGreenFlag() { return blk("receiveGo"); }
inline BlockPtr whenKeyPressed(const std::string& key) {
  return blk("receiveKey", {In(key)});
}
inline BlockPtr whenIReceive(const std::string& message) {
  return blk("receiveMessage", {In(message)});
}
inline BlockPtr whenCloneStarts() { return blk("receiveCloneStart"); }

// --- looks / motion / sensing --------------------------------------------
inline BlockPtr say(In value) { return blk("bubble", {value}); }
inline BlockPtr sayFor(In value, In seconds) {
  return blk("doSayFor", {value, seconds});
}
inline BlockPtr think(In value) { return blk("doThink", {value}); }
inline BlockPtr switchCostume(In name) {
  return blk("doSwitchToCostume", {name});
}
inline BlockPtr show() { return blk("show"); }
inline BlockPtr hide() { return blk("hide"); }
inline BlockPtr touching(In name) {
  return blk("reportTouchingSprite", {name});
}
inline BlockPtr moveSteps(In steps) { return blk("forward", {steps}); }
inline BlockPtr turnRight(In degrees) { return blk("turn", {degrees}); }
inline BlockPtr turnLeftBy(In degrees) { return blk("turnLeft", {degrees}); }
inline BlockPtr pointInDirection(In degrees) {
  return blk("setHeading", {degrees});
}
inline BlockPtr goToXY(In x, In y) { return blk("gotoXY", {x, y}); }
inline BlockPtr timer() { return blk("getTimer"); }
inline BlockPtr resetTimer() { return blk("doResetTimer"); }

// --- the paper's parallel blocks -------------------------------------------
/// `parallel map (ring) over (list) workers: (n)` — paper Fig. 5.
/// Pass collapsed() (or omit) for the default worker count.
inline BlockPtr parallelMap(In ringIn, In list, In workers = collapsed()) {
  return blk("reportParallelMap", {ringIn, list, workers});
}
/// `for each (var) of (list) in parallel (n) { body }` — paper Fig. 8a.
/// Pass collapsed() as `parallelism` for sequential mode (Fig. 8b) and
/// blank() for the default (one clone per list element).
inline BlockPtr parallelForEach(const std::string& var, In list,
                                In parallelism, ScriptPtr body) {
  return blk("doParallelForEach",
             {In(var), list, parallelism, In(std::move(body))});
}
/// `mapReduce map: (ring) reduce: (ring) on (list)` — paper Fig. 11/13.
inline BlockPtr mapReduce(In mapRing, In reduceRing, In list) {
  return blk("reportMapReduce", {mapRing, reduceRing, list});
}
inline BlockPtr maxWorkers() { return blk("reportMaxWorkers"); }
/// `launch parallel map (ring) over (list) workers: (n)` — returns a
/// future immediately; join it with awaitValue().
inline BlockPtr launchParallelMap(In ringIn, In list,
                                  In workers = collapsed()) {
  return blk("launchParallelMap", {ringIn, list, workers});
}
/// `launch mapReduce map: (ring) reduce: (ring) on (list)` — future form.
inline BlockPtr launchMapReduce(In mapRing, In reduceRing, In list) {
  return blk("launchMapReduce", {mapRing, reduceRing, list});
}
/// `await (value)` — joins a future (identity on plain values).
inline BlockPtr awaitValue(In value) {
  return blk("reportAwait", {value});
}

// --- code mapping (Section 6) ----------------------------------------------
inline BlockPtr mapToLanguage(In language) {
  return blk("doMapToCode", {language});
}
inline BlockPtr codeOf(In ringIn) {
  return blk("reportMappedCode", {ringIn});
}

}  // namespace psnap::build
