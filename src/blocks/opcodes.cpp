#include "blocks/opcodes.hpp"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "support/error.hpp"

namespace psnap::blocks {

namespace {

struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

struct StringEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

/// The process-wide opcode pool. Append-only: ids are never reused, so a
/// raced lookup can at worst miss a brand-new opcode and retry under the
/// write lock.
class Interner {
 public:
  Interner() {
#define PSNAP_OPCODE_SEED(name, str) names_.emplace_back(str);
    PSNAP_FOR_EACH_BUILTIN_OPCODE(PSNAP_OPCODE_SEED)
#undef PSNAP_OPCODE_SEED
    for (OpcodeId i = 0; i < names_.size(); ++i) ids_.emplace(names_[i], i);
  }

  OpcodeId intern(std::string_view opcode) {
    {
      std::shared_lock lock(mutex_);
      auto it = ids_.find(opcode);
      if (it != ids_.end()) return it->second;
    }
    std::unique_lock lock(mutex_);
    auto it = ids_.find(opcode);
    if (it != ids_.end()) return it->second;
    const OpcodeId fresh = static_cast<OpcodeId>(names_.size());
    names_.emplace_back(opcode);
    ids_.emplace(names_.back(), fresh);
    return fresh;
  }

  OpcodeId lookup(std::string_view opcode) const {
    std::shared_lock lock(mutex_);
    auto it = ids_.find(opcode);
    return it == ids_.end() ? kInvalidOpcodeId : it->second;
  }

  const std::string& name(OpcodeId id) const {
    std::shared_lock lock(mutex_);
    if (id >= names_.size()) {
      throw BlockError("opcode id " + std::to_string(id) +
                       " was never interned");
    }
    return names_[id];
  }

  size_t size() const {
    std::shared_lock lock(mutex_);
    return names_.size();
  }

 private:
  mutable std::shared_mutex mutex_;
  // A deque so `name()` references stay valid as the pool grows.
  std::deque<std::string> names_;
  std::unordered_map<std::string, OpcodeId, StringHash, StringEq> ids_;
};

Interner& pool() {
  static Interner interner;
  return interner;
}

}  // namespace

OpcodeId internOpcode(std::string_view opcode) {
  return pool().intern(opcode);
}

OpcodeId lookupOpcode(std::string_view opcode) {
  return pool().lookup(opcode);
}

const std::string& opcodeName(OpcodeId id) { return pool().name(id); }

size_t internedOpcodeCount() { return pool().size(); }

}  // namespace psnap::blocks
