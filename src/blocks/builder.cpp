#include "blocks/builder.hpp"

namespace psnap::build {

BlockPtr blk(const std::string& opcode, std::vector<In> inputs) {
  std::vector<Input> slots;
  slots.reserve(inputs.size());
  for (In& in : inputs) slots.push_back(std::move(in.input));
  return Block::make(opcode, std::move(slots));
}

ScriptPtr scriptOf(std::vector<BlockPtr> blocks) {
  return Script::make(std::move(blocks));
}

BlockPtr declareVars(const std::vector<std::string>& names) {
  std::vector<In> inputs;
  inputs.reserve(names.size());
  for (const std::string& name : names) inputs.emplace_back(name);
  return blk("doDeclareVariables", std::move(inputs));
}

BlockPtr listOf(std::vector<In> items) {
  return blk("reportNewList", std::move(items));
}

BlockPtr ring(In expression, std::vector<std::string> formals) {
  std::vector<In> inputs;
  inputs.push_back(std::move(expression));
  for (std::string& name : formals) inputs.emplace_back(std::move(name));
  return blk("reifyReporter", std::move(inputs));
}

BlockPtr ringScript(ScriptPtr script, std::vector<std::string> formals) {
  std::vector<In> inputs;
  inputs.emplace_back(std::move(script));
  for (std::string& name : formals) inputs.emplace_back(std::move(name));
  return blk("reifyScript", std::move(inputs));
}

BlockPtr identityRing() { return ring(In(identity(empty()))); }

BlockPtr callRing(In ringIn, std::vector<In> args) {
  std::vector<In> inputs;
  inputs.push_back(std::move(ringIn));
  for (In& arg : args) inputs.push_back(std::move(arg));
  return blk("evaluate", std::move(inputs));
}

BlockPtr runRing(In ringIn, std::vector<In> args) {
  std::vector<In> inputs;
  inputs.push_back(std::move(ringIn));
  for (In& arg : args) inputs.push_back(std::move(arg));
  return blk("doRun", std::move(inputs));
}

}  // namespace psnap::build
