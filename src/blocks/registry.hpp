// The block registry: specs for every palette block.
//
// A BlockSpec mirrors the metadata Snap! keeps per primitive: the display
// spec string with typed input-slot tokens, the block shape (command /
// reporter / predicate / hat), the palette category, and two semantic
// flags the parallel machinery relies on:
//
//   * `pure`   — the block has no effects on the stage or scheduler, so a
//                ring containing it may be shipped to a Web-Worker-analog
//                thread and may be translated by the expression code
//                generator (paper Listing 2 performs exactly this
//                translation via `mappedCode()`).
//   * `strict` — all value inputs are evaluated before the primitive runs
//                (control blocks are non-strict: they re-evaluate their
//                condition slots and run their C-slots themselves).
//
// Spec token vocabulary (a subset of Snap!'s):
//   %n number   %s text   %b boolean   %any any value   %l list
//   %repRing reporter ring   %cmdRing command ring   %cs C-slot script
//   %var variable name       %mult variadic tail of any-values
// A token suffixed with `?` marks a *collapsible* optional slot (the
// "in parallel" input of parallelForEach, Fig. 8 of the paper).
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "blocks/block.hpp"
#include "blocks/opcodes.hpp"

namespace psnap::blocks {

enum class BlockType { Command, Reporter, Predicate, Hat };

enum class SlotKind {
  Number,
  Text,
  Boolean,
  Any,
  List,
  ReporterRing,
  CommandRing,
  CScript,
  Variable,
};

/// One parsed input-slot of a spec.
struct SlotSpec {
  SlotKind kind = SlotKind::Any;
  bool optional = false;  ///< slot may be Collapsed in a block instance
};

/// Static description of a palette block.
struct BlockSpec {
  std::string opcode;
  std::string spec;      ///< display string with % tokens
  std::string category;  ///< palette category ("control", "operators", …)
  BlockType type = BlockType::Command;
  bool pure = false;
  bool strict = true;
  std::vector<SlotSpec> slots;  ///< parsed from `spec`
  bool variadic = false;        ///< spec ended with %mult
  /// Interned id, filled by BlockRegistry::add().
  OpcodeId id = kInvalidOpcodeId;

  /// Number of mandatory slots (non-optional, non-variadic).
  size_t minArity() const;
};

/// Parse the `%` tokens out of a spec string into slot descriptions.
/// Returns the slots; sets `variadic` when the spec ends with %mult.
std::vector<SlotSpec> parseSpecSlots(const std::string& spec, bool& variadic);

/// Registry mapping opcodes to specs. The interpreter, the code generator,
/// and the serializer all consult the same registry so the opcode set has a
/// single source of truth.
class BlockRegistry {
 public:
  BlockRegistry() = default;

  /// Register a spec (parses slot tokens from `spec.spec` if `spec.slots`
  /// is empty). Throws BlockError on duplicate opcodes.
  void add(BlockSpec spec);

  bool has(const std::string& opcode) const;
  /// Lookup; returns nullptr when the opcode is unknown.
  const BlockSpec* find(const std::string& opcode) const;
  /// Lookup; throws BlockError when the opcode is unknown.
  const BlockSpec& get(const std::string& opcode) const;

  /// The interned id of a registered opcode; throws BlockError when the
  /// opcode is not registered here.
  OpcodeId idOf(const std::string& opcode) const;
  /// Spec lookup by interned id — the zero-hash dispatch path. Returns
  /// nullptr when no spec with that id is registered in *this* registry.
  const BlockSpec* specOf(OpcodeId id) const {
    if (id >= byId_.size()) return nullptr;
    const int32_t slot = byId_[id];
    return slot < 0 ? nullptr : &store_[static_cast<size_t>(slot)];
  }

  /// Check a block instance against its spec: arity, collapsed slots only
  /// where optional, C-slots only in CScript positions. Recurses into
  /// nested blocks and scripts. Throws BlockError on violation.
  void validate(const Block& block) const;
  void validate(const Script& script) const;

  /// All registered opcodes, sorted. The sorted vector is maintained
  /// incrementally by add(), not rebuilt per call.
  const std::vector<std::string>& opcodes() const { return sortedOpcodes_; }

  /// Render a block instance as the user would read it: the spec text with
  /// slot tokens replaced by the rendered inputs.
  std::string render(const Block& block) const;

  /// The standard palette: every block the interpreter implements.
  /// Includes the paper's parallel blocks.
  static const BlockRegistry& standard();

 private:
  // Value-semantic storage: copying a registry (projects clone the
  // standard palette before adding custom blocks) copies the index
  // vectors verbatim, and the global ids stay valid in the copy.
  std::deque<BlockSpec> store_;        ///< registration order
  std::vector<int32_t> byId_;          ///< OpcodeId → store_ index, -1 absent
  std::vector<std::string> sortedOpcodes_;
};

/// Populate `registry` with the standard palette (exposed separately so
/// tests can build custom registries on top).
void registerStandardSpecs(BlockRegistry& registry);

}  // namespace psnap::blocks
