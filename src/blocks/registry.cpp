#include "blocks/registry.hpp"

#include <algorithm>
#include <cctype>

#include "support/error.hpp"

namespace psnap::blocks {

size_t BlockSpec::minArity() const {
  size_t count = 0;
  for (const SlotSpec& slot : slots) {
    if (!slot.optional) ++count;
  }
  return count;
}

std::vector<SlotSpec> parseSpecSlots(const std::string& spec,
                                     bool& variadic) {
  variadic = false;
  std::vector<SlotSpec> slots;
  size_t i = 0;
  while (i < spec.size()) {
    if (spec[i] != '%') {
      ++i;
      continue;
    }
    size_t start = i + 1;
    size_t end = start;
    while (end < spec.size() &&
           (std::isalnum(static_cast<unsigned char>(spec[end])))) {
      ++end;
    }
    std::string token = spec.substr(start, end - start);
    bool optional = end < spec.size() && spec[end] == '?';
    i = optional ? end + 1 : end;

    SlotSpec slot;
    slot.optional = optional;
    if (token == "n") {
      slot.kind = SlotKind::Number;
    } else if (token == "s") {
      slot.kind = SlotKind::Text;
    } else if (token == "b") {
      slot.kind = SlotKind::Boolean;
    } else if (token == "any") {
      slot.kind = SlotKind::Any;
    } else if (token == "l") {
      slot.kind = SlotKind::List;
    } else if (token == "repRing") {
      slot.kind = SlotKind::ReporterRing;
    } else if (token == "cmdRing") {
      slot.kind = SlotKind::CommandRing;
    } else if (token == "cs") {
      slot.kind = SlotKind::CScript;
    } else if (token == "var") {
      slot.kind = SlotKind::Variable;
    } else if (token == "mult") {
      variadic = true;
      continue;  // variadic tail adds no fixed slot
    } else {
      throw BlockError("unknown spec token %" + token + " in \"" + spec +
                       "\"");
    }
    slots.push_back(slot);
  }
  return slots;
}

void BlockRegistry::add(BlockSpec spec) {
  const OpcodeId opId = internOpcode(spec.opcode);
  if (specOf(opId) != nullptr) {
    throw BlockError("duplicate opcode " + spec.opcode);
  }
  if (spec.slots.empty()) {
    spec.slots = parseSpecSlots(spec.spec, spec.variadic);
  }
  spec.id = opId;
  if (opId >= byId_.size()) byId_.resize(opId + 1, -1);
  byId_[opId] = static_cast<int32_t>(store_.size());
  auto pos = std::lower_bound(sortedOpcodes_.begin(), sortedOpcodes_.end(),
                              spec.opcode);
  sortedOpcodes_.insert(pos, spec.opcode);
  store_.push_back(std::move(spec));
}

bool BlockRegistry::has(const std::string& opcode) const {
  return find(opcode) != nullptr;
}

const BlockSpec* BlockRegistry::find(const std::string& opcode) const {
  return specOf(lookupOpcode(opcode));
}

const BlockSpec& BlockRegistry::get(const std::string& opcode) const {
  const BlockSpec* spec = find(opcode);
  if (!spec) throw BlockError("unknown opcode " + opcode);
  return *spec;
}

OpcodeId BlockRegistry::idOf(const std::string& opcode) const {
  const BlockSpec* spec = find(opcode);
  if (!spec) throw BlockError("unknown opcode " + opcode);
  return spec->id;
}

void BlockRegistry::validate(const Block& block) const {
  const BlockSpec* found = specOf(block.opcodeId());
  if (!found) throw BlockError("unknown opcode " + block.opcode());
  const BlockSpec& spec = *found;
  const size_t fixed = spec.slots.size();
  if (block.arity() < spec.minArity() ||
      (!spec.variadic && block.arity() > fixed)) {
    throw BlockError("block " + block.opcode() + " has " +
                     std::to_string(block.arity()) + " inputs, spec \"" +
                     spec.spec + "\" wants " +
                     std::to_string(spec.minArity()) +
                     (spec.variadic ? "+" : ".." + std::to_string(fixed)));
  }
  for (size_t i = 0; i < block.arity(); ++i) {
    const Input& input = block.input(i);
    const SlotSpec* slot = i < fixed ? &spec.slots[i] : nullptr;
    if (input.isCollapsed()) {
      if (!slot || !slot->optional) {
        throw BlockError("input " + std::to_string(i + 1) + " of " +
                         block.opcode() + " is not collapsible");
      }
      continue;
    }
    if (slot && slot->kind == SlotKind::CScript) {
      if (!input.isScript()) {
        throw BlockError("input " + std::to_string(i + 1) + " of " +
                         block.opcode() + " must be a C-slot script");
      }
    } else if (input.isScript()) {
      throw BlockError("input " + std::to_string(i + 1) + " of " +
                       block.opcode() + " may not hold a script");
    }
    if (input.isBlock()) validate(*input.block());
    if (input.isScript()) validate(*input.script());
  }
}

void BlockRegistry::validate(const Script& script) const {
  for (const BlockPtr& block : script.blocks()) validate(*block);
}

namespace {

std::string renderInput(const BlockRegistry& registry, const Input& input) {
  switch (input.kind()) {
    case InputKind::Literal: {
      const Value& v = input.literalValue();
      return "(" + v.display() + ")";
    }
    case InputKind::BlockExpr:
      return "(" + registry.render(*input.block()) + ")";
    case InputKind::ScriptSlot: {
      std::string out = "{";
      for (const BlockPtr& b : input.script()->blocks()) {
        out += " " + registry.render(*b) + ";";
      }
      return out + " }";
    }
    case InputKind::Empty:
      return "( )";
    case InputKind::Collapsed:
      return "";
  }
  return "";
}

}  // namespace

std::string BlockRegistry::render(const Block& block) const {
  const BlockSpec* spec = specOf(block.opcodeId());
  if (!spec) return block.display();
  std::string out;
  size_t nextInput = 0;
  size_t i = 0;
  const std::string& text = spec->spec;
  while (i < text.size()) {
    if (text[i] != '%') {
      out += text[i++];
      continue;
    }
    size_t end = i + 1;
    while (end < text.size() &&
           std::isalnum(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    const std::string token = text.substr(i + 1, end - i - 1);
    if (end < text.size() && text[end] == '?') ++end;
    i = end;
    if (token == "mult") {
      // Render the variadic tail.
      std::vector<std::string> parts;
      while (nextInput < block.arity()) {
        parts.push_back(renderInput(*this, block.input(nextInput++)));
      }
      for (size_t p = 0; p < parts.size(); ++p) {
        if (p != 0) out += ' ';
        out += parts[p];
      }
      continue;
    }
    if (nextInput < block.arity()) {
      out += renderInput(*this, block.input(nextInput++));
    } else {
      out += "( )";
    }
  }
  return out;
}

namespace {

BlockSpec spec(std::string opcode, std::string text, std::string category,
               BlockType type, bool pure, bool strict = true) {
  BlockSpec s;
  s.opcode = std::move(opcode);
  s.spec = std::move(text);
  s.category = std::move(category);
  s.type = type;
  s.pure = pure;
  s.strict = strict;
  return s;
}

}  // namespace

void registerStandardSpecs(BlockRegistry& r) {
  using T = BlockType;
  // --- operators (pure reporters) -------------------------------------
  r.add(spec("reportSum", "%n + %n", "operators", T::Reporter, true));
  r.add(spec("reportDifference", "%n - %n", "operators", T::Reporter, true));
  r.add(spec("reportProduct", "%n * %n", "operators", T::Reporter, true));
  r.add(spec("reportQuotient", "%n / %n", "operators", T::Reporter, true));
  r.add(spec("reportModulus", "%n mod %n", "operators", T::Reporter, true));
  r.add(spec("reportPower", "%n ^ %n", "operators", T::Reporter, true));
  r.add(spec("reportRound", "round %n", "operators", T::Reporter, true));
  r.add(spec("reportMonadic", "%s of %n", "operators", T::Reporter, true));
  r.add(spec("reportRandom", "pick random %n to %n", "operators",
             T::Reporter, false));
  r.add(spec("reportEquals", "%any = %any", "operators", T::Predicate, true));
  r.add(spec("reportLessThan", "%any < %any", "operators", T::Predicate,
             true));
  r.add(spec("reportGreaterThan", "%any > %any", "operators", T::Predicate,
             true));
  r.add(spec("reportAnd", "%b and %b", "operators", T::Predicate, true));
  r.add(spec("reportOr", "%b or %b", "operators", T::Predicate, true));
  r.add(spec("reportNot", "not %b", "operators", T::Predicate, true));
  r.add(spec("reportIfElse", "if %b then %any else %any", "operators",
             T::Reporter, true));
  r.add(spec("reportJoinWords", "join %mult", "operators", T::Reporter,
             true));
  r.add(spec("reportLetter", "letter %n of %s", "operators", T::Reporter,
             true));
  r.add(spec("reportStringSize", "length of text %s", "operators",
             T::Reporter, true));
  r.add(spec("reportUnicode", "unicode of %s", "operators", T::Reporter,
             true));
  r.add(spec("reportUnicodeAsLetter", "unicode %n as letter", "operators",
             T::Reporter, true));
  r.add(spec("reportSplit", "split %s by %s", "operators", T::Reporter,
             true));
  r.add(spec("reportIsA", "is %any a %s ?", "operators", T::Predicate,
             true));
  r.add(spec("reportIdentity", "identity %any", "operators", T::Reporter,
             true));

  // --- rings (first-class procedures) -----------------------------------
  // Non-strict: the body is captured, not evaluated. The variadic tail
  // holds the formal parameter names as text literals.
  r.add(spec("reifyReporter", "ring %any %mult", "operators", T::Reporter,
             true, false));
  r.add(spec("reifyScript", "ring %cs %mult", "operators", T::Reporter,
             true, false));

  // --- variables -------------------------------------------------------
  r.add(spec("reportGetVar", "%var", "variables", T::Reporter, true));
  r.add(spec("doSetVar", "set %var to %any", "variables", T::Command,
             false));
  r.add(spec("doChangeVar", "change %var by %n", "variables", T::Command,
             false));
  r.add(spec("doDeclareVariables", "script variables %mult", "variables",
             T::Command, false));

  // --- lists (reporters pure, mutators impure) -------------------------
  r.add(spec("reportNewList", "list %mult", "lists", T::Reporter, true));
  r.add(spec("reportListItem", "item %n of %l", "lists", T::Reporter, true));
  r.add(spec("reportListLength", "length of %l", "lists", T::Reporter,
             true));
  r.add(spec("reportListContainsItem", "%l contains %any", "lists",
             T::Predicate, true));
  r.add(spec("reportListIndex", "index of %any in %l", "lists", T::Reporter,
             true));
  r.add(spec("reportCONS", "%any in front of %l", "lists", T::Reporter,
             true));
  r.add(spec("reportCDR", "all but first of %l", "lists", T::Reporter,
             true));
  r.add(spec("reportNumbers", "numbers from %n to %n", "lists", T::Reporter,
             true));
  r.add(spec("reportSorted", "sorted %l", "lists", T::Reporter, true));
  r.add(spec("doAddToList", "add %any to %l", "lists", T::Command, false));
  r.add(spec("doDeleteFromList", "delete %n of %l", "lists", T::Command,
             false));
  r.add(spec("doInsertInList", "insert %any at %n of %l", "lists",
             T::Command, false));
  r.add(spec("doReplaceInList", "replace item %n of %l with %any", "lists",
             T::Command, false));

  // --- higher-order functions (sequential) ------------------------------
  r.add(spec("reportMap", "map %repRing over %l", "lists", T::Reporter,
             true));
  r.add(spec("reportKeep", "keep items such that %repRing from %l", "lists",
             T::Reporter, true));
  r.add(spec("reportCombine", "combine %l using %repRing", "lists",
             T::Reporter, true));
  r.add(spec("doForEach", "for each %var of %l %cs", "lists", T::Command,
             false, false));

  // --- control -----------------------------------------------------------
  r.add(spec("doForever", "forever %cs", "control", T::Command, false,
             false));
  r.add(spec("doRepeat", "repeat %n %cs", "control", T::Command, false,
             false));
  r.add(spec("doFor", "for %var = %n to %n %cs", "control", T::Command,
             false, false));
  r.add(spec("doIf", "if %b %cs", "control", T::Command, false, false));
  r.add(spec("doIfElse", "if %b %cs else %cs", "control", T::Command, false,
             false));
  r.add(spec("doUntil", "repeat until %b %cs", "control", T::Command, false,
             false));
  r.add(spec("doWaitUntil", "wait until %b", "control", T::Command, false,
             false));
  r.add(spec("doWait", "wait %n secs", "control", T::Command, false));
  r.add(spec("doWarp", "warp %cs", "control", T::Command, false, false));
  r.add(spec("doYield", "yield", "control", T::Command, false));
  r.add(spec("doBusyWork", "work for %n frames", "control", T::Command,
             false));
  r.add(spec("doReport", "report %any", "control", T::Command, false));
  r.add(spec("doStopThis", "stop this script", "control", T::Command,
             false));
  r.add(spec("doBroadcast", "broadcast %s", "control", T::Command, false));
  r.add(spec("doBroadcastAndWait", "broadcast %s and wait", "control",
             T::Command, false, false));
  r.add(spec("evaluate", "call %repRing with inputs %mult", "control",
             T::Reporter, false));
  r.add(spec("doRun", "run %cmdRing with inputs %mult", "control",
             T::Command, false));
  r.add(spec("receiveGo", "when green flag clicked", "control", T::Hat,
             false));
  r.add(spec("receiveKey", "when %s key pressed", "control", T::Hat, false));
  r.add(spec("receiveMessage", "when I receive %s", "control", T::Hat,
             false));
  r.add(spec("receiveCloneStart", "when I start as a clone", "control",
             T::Hat, false));
  r.add(spec("createClone", "create a clone of %s", "control", T::Command,
             false));
  r.add(spec("removeClone", "delete this clone", "control", T::Command,
             false));

  // --- looks / motion / sensing ------------------------------------------
  r.add(spec("bubble", "say %any", "looks", T::Command, false));
  r.add(spec("doSayFor", "say %any for %n secs", "looks", T::Command,
             false));
  r.add(spec("doThink", "think %any", "looks", T::Command, false));
  r.add(spec("doSwitchToCostume", "switch to costume %s", "looks",
             T::Command, false));
  r.add(spec("show", "show", "looks", T::Command, false));
  r.add(spec("hide", "hide", "looks", T::Command, false));
  r.add(spec("reportTouchingSprite", "touching %s ?", "sensing",
             T::Predicate, false));
  r.add(spec("reportCostumeName", "costume name", "looks", T::Reporter,
             false));
  r.add(spec("forward", "move %n steps", "motion", T::Command, false));
  r.add(spec("turn", "turn right %n degrees", "motion", T::Command, false));
  r.add(spec("turnLeft", "turn left %n degrees", "motion", T::Command,
             false));
  r.add(spec("setHeading", "point in direction %n", "motion", T::Command,
             false));
  r.add(spec("gotoXY", "go to x: %n y: %n", "motion", T::Command, false));
  r.add(spec("changeXPosition", "change x by %n", "motion", T::Command,
             false));
  r.add(spec("changeYPosition", "change y by %n", "motion", T::Command,
             false));
  r.add(spec("xPosition", "x position", "motion", T::Reporter, false));
  r.add(spec("yPosition", "y position", "motion", T::Reporter, false));
  r.add(spec("direction", "direction", "motion", T::Reporter, false));
  r.add(spec("getTimer", "timer", "sensing", T::Reporter, false));
  r.add(spec("doResetTimer", "reset timer", "sensing", T::Command, false));

  // --- the paper's parallel blocks (Sections 3–4) -------------------------
  r.add(spec("reportParallelMap", "parallel map %repRing over %l workers: %n?",
             "parallelism", T::Reporter, false));
  r.add(spec("doParallelForEach",
             "for each %var of %l in parallel %n? %cs", "parallelism",
             T::Command, false, false));
  r.add(spec("reportMapReduce",
             "mapReduce map: %repRing reduce: %repRing on %l", "parallelism",
             T::Reporter, false));
  r.add(spec("reportMaxWorkers", "max workers", "parallelism", T::Reporter,
             false));
  // Completion-driven async (DESIGN.md "Completion model"): the launch
  // variants return a pending future immediately — the script keeps
  // computing — and `await` joins it (identity on non-future values).
  r.add(spec("launchParallelMap",
             "launch parallel map %repRing over %l workers: %n?",
             "parallelism", T::Reporter, false));
  r.add(spec("launchMapReduce",
             "launch mapReduce map: %repRing reduce: %repRing on %l",
             "parallelism", T::Reporter, false));
  r.add(spec("reportAwait", "await %any", "parallelism", T::Reporter,
             false));

  // Internal driver used by doParallelForEach to run one clone's chunk of
  // list items through the C-slot body (same layout as doForEach).
  r.add(spec("__foreachDriver", "for each %var of %l %cs", "internal",
             T::Command, false, false));

  // --- code mapping (Section 6) -------------------------------------------
  r.add(spec("doMapToCode", "map to language %s", "codegen", T::Command,
             false));
  r.add(spec("reportMappedCode", "code of %any", "codegen", T::Reporter,
             false));
}

const BlockRegistry& BlockRegistry::standard() {
  static const BlockRegistry registry = [] {
    BlockRegistry r;
    registerStandardSpecs(r);
    return r;
  }();
  return registry;
}

}  // namespace psnap::blocks
