// Lexically scoped variable frames.
//
// A frame chain models Snap!'s scope stack: script variables shadow sprite
// variables, which shadow globals. Rings capture the frame that was current
// when the ring was evaluated, and calling a ring pushes a fresh frame that
// binds the formal parameters (or the implicit empty-slot arguments) on top
// of the captured frame.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "blocks/value.hpp"

namespace psnap::blocks {

class Environment {
 public:
  explicit Environment(EnvPtr parent = nullptr) : parent_(std::move(parent)) {}

  static EnvPtr make(EnvPtr parent = nullptr) {
    return std::make_shared<Environment>(std::move(parent));
  }

  /// Declare a variable in *this* frame (Snap! `script variables`).
  void declare(const std::string& name, Value initial = Value());

  /// True if `name` resolves in this frame or any ancestor.
  bool isDeclared(const std::string& name) const;

  /// Read a variable, searching up the chain; throws Error if undeclared.
  const Value& get(const std::string& name) const;

  /// Assign to the nearest frame declaring `name`; if none declares it,
  /// declare it in the root (global) frame, matching Snap!'s behaviour of
  /// `set` on an unknown name targeting the global scope.
  void set(const std::string& name, Value value);

  /// The arguments bound to a ring call's implicit empty-slot parameters.
  /// Empty slots are filled left to right: the i-th empty slot evaluated in
  /// the ring body reads implicitArg(i).
  void setImplicitArgs(std::vector<Value> args);
  bool hasImplicitArgs() const;
  /// Fetch the argument for the `ordinal`-th empty slot (0-based); searches
  /// up the chain to the nearest frame with implicit args. When a ring has a
  /// single implicit argument, every empty slot receives it (Snap! fills all
  /// blanks with the same value if there is exactly one argument).
  const Value& implicitArg(size_t ordinal) const;

  /// The ring whose call created this frame (used to resolve the static
  /// ordinal of an empty slot inside the ring body); null for plain frames.
  void setOwningRing(const Ring* ring) { owningRing_ = ring; }
  const Ring* owningRing() const {
    if (owningRing_) return owningRing_;
    return parent_ ? parent_->owningRing() : nullptr;
  }

  const EnvPtr& parent() const { return parent_; }

  /// Names declared in this frame only (iteration order unspecified).
  std::vector<std::string> localNames() const;

 private:
  struct Slot {
    std::string name;
    Value value;
  };

  /// Frames this small are scanned linearly — almost every frame holds a
  /// handful of script variables or ring formals, and a short scan over a
  /// contiguous vector beats hashing the name. Larger frames build and
  /// maintain `index_` on the side.
  static constexpr size_t kSmallFrame = 8;

  Slot* findLocal(const std::string& name);
  const Slot* findLocal(const std::string& name) const;

  EnvPtr parent_;
  std::vector<Slot> locals_;
  /// name → locals_ index; populated only once locals_ outgrows kSmallFrame.
  std::unordered_map<std::string, size_t> index_;
  std::optional<std::vector<Value>> implicitArgs_;
  const Ring* owningRing_ = nullptr;
};

}  // namespace psnap::blocks
