#include "blocks/value.hpp"

#include <algorithm>
#include <cmath>

#include "blocks/future.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace psnap::blocks {

const char* valueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::Nothing: return "nothing";
    case ValueKind::Number: return "number";
    case ValueKind::Boolean: return "boolean";
    case ValueKind::Text: return "text";
    case ValueKind::ListRef: return "list";
    case ValueKind::RingRef: return "ring";
    case ValueKind::FutureRef: return "future";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// TextRep — shared immutable payload with lazy, thread-safe caches.
// ---------------------------------------------------------------------------

TextRep::Numeric TextRep::numeric(double& out) const {
  uint8_t state = numericState_.load(std::memory_order_acquire);
  if (state == uint8_t(Numeric::Unknown)) {
    double parsed = 0;
    Numeric computed;
    if (strings::parseNumber(text_, parsed)) {
      computed = Numeric::Parsed;
    } else if (strings::isBlank(text_)) {
      computed = Numeric::BlankZero;
      parsed = 0;
    } else {
      computed = Numeric::No;
    }
    // Publish value before state; racing writers store identical bytes.
    numericValue_.store(parsed, std::memory_order_relaxed);
    numericState_.store(uint8_t(computed), std::memory_order_release);
    state = uint8_t(computed);
  }
  out = numericValue_.load(std::memory_order_relaxed);
  return Numeric(state);
}

uint64_t TextRep::loweredHash() const {
  if (hashState_.load(std::memory_order_acquire) == 0) {
    loweredHash_.store(strings::hashLowered(text_),
                       std::memory_order_relaxed);
    hashState_.store(1, std::memory_order_release);
  }
  return loweredHash_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

namespace {
constexpr size_t kSmallTextCap = 15;
}  // namespace

Value::Value(std::string text) {
  if (text.size() <= kSmallTextCap) {
    // Zero-initialized so the bytes beyond size are deterministic: the
    // persistence layer snapshots small-text Values by raw byte image.
    SmallText small = {};
    std::memcpy(small.bytes, text.data(), text.size());
    small.size = uint8_t(text.size());
    v_ = small;
  } else {
    v_ = TextPtr(std::make_shared<TextRep>(std::move(text)));
  }
}

Value::Value(std::string_view text) {
  if (text.size() <= kSmallTextCap) {
    SmallText small = {};
    std::memcpy(small.bytes, text.data(), text.size());
    small.size = uint8_t(text.size());
    v_ = small;
  } else {
    v_ = TextPtr(std::make_shared<TextRep>(std::string(text)));
  }
}

ValueKind Value::kind() const {
  switch (v_.index()) {
    case 0: return ValueKind::Nothing;
    case 1: return ValueKind::Number;
    case 2: return ValueKind::Boolean;
    case 3:
    case 4: return ValueKind::Text;
    case 5: return ValueKind::ListRef;
    case 6: return ValueKind::RingRef;
    default: return ValueKind::FutureRef;
  }
}

std::string_view Value::textView() const {
  if (const SmallText* small = std::get_if<SmallText>(&v_)) {
    return std::string_view(small->bytes, small->size);
  }
  if (const TextPtr* rep = std::get_if<TextPtr>(&v_)) {
    return (*rep)->text();
  }
  throw TypeError(std::string("expecting text but getting a ") +
                  valueKindName(kind()));
}

bool Value::numericValue(double& out) const {
  switch (v_.index()) {
    case 1:  // Number
      out = std::get<double>(v_);
      return true;
    case 3:  // SmallText: parsing <= 15 bytes is allocation-free and cheap
      return strings::parseNumber(textView(), out);
    case 4:  // TextPtr: classified once, then a cache read
      return std::get<TextPtr>(v_)->numeric(out) ==
             TextRep::Numeric::Parsed;
    default:
      return false;
  }
}

uint64_t Value::loweredHash() const {
  if (const TextPtr* rep = std::get_if<TextPtr>(&v_)) {
    return (*rep)->loweredHash();
  }
  return strings::hashLowered(textView());
}

double Value::asNumber() const {
  switch (v_.index()) {
    case 1:
      return std::get<double>(v_);
    case 2:
      return std::get<bool>(v_) ? 1.0 : 0.0;
    case 3: {
      const std::string_view text = textView();
      double parsed = 0;
      if (strings::parseNumber(text, parsed)) return parsed;
      // Snap! treats empty text as 0 in arithmetic contexts.
      if (strings::isBlank(text)) return 0.0;
      throw TypeError("expecting a number but getting text \"" +
                      std::string(text) + "\"");
    }
    case 4: {
      double parsed = 0;
      switch (std::get<TextPtr>(v_)->numeric(parsed)) {
        case TextRep::Numeric::Parsed: return parsed;
        case TextRep::Numeric::BlankZero: return 0.0;
        default:
          throw TypeError("expecting a number but getting text \"" +
                          std::get<TextPtr>(v_)->text() + "\"");
      }
    }
    case 0:
      return 0.0;
    default:
      throw TypeError(std::string("expecting a number but getting a ") +
                      valueKindName(kind()));
  }
}

long long Value::asInteger() const {
  double n = asNumber();
  if (!std::isfinite(n)) throw TypeError("expecting a finite integer");
  return static_cast<long long>(std::llround(n));
}

std::string Value::asText() const {
  switch (v_.index()) {
    case 0: return "";
    case 1: return strings::formatNumber(std::get<double>(v_));
    case 2: return std::get<bool>(v_) ? "true" : "false";
    case 3:
    case 4: return std::string(textView());
    default:
      throw TypeError(std::string("expecting text but getting a ") +
                      valueKindName(kind()));
  }
}

bool Value::asBoolean() const {
  if (isBoolean()) return std::get<bool>(v_);
  if (isText()) {
    const std::string_view text = textView();
    if (strings::equalsIgnoreCase(text, "true")) return true;
    if (strings::equalsIgnoreCase(text, "false")) return false;
  }
  throw TypeError(std::string("expecting a boolean but getting a ") +
                  valueKindName(kind()));
}

const ListPtr& Value::asList() const {
  if (!isList()) {
    throw TypeError(std::string("expecting a list but getting a ") +
                    valueKindName(kind()));
  }
  return std::get<ListPtr>(v_);
}

const RingPtr& Value::asRing() const {
  if (!isRing()) {
    throw TypeError(std::string("expecting a ring but getting a ") +
                    valueKindName(kind()));
  }
  return std::get<RingPtr>(v_);
}

const FuturePtr& Value::asFuture() const {
  if (!isFuture()) {
    throw TypeError(std::string("expecting a future but getting a ") +
                    valueKindName(kind()));
  }
  return std::get<FuturePtr>(v_);
}

bool Value::equals(const Value& other) const {
  // Lists: deep structural equality.
  if (isList() || other.isList()) {
    if (!isList() || !other.isList()) return false;
    return asList()->deepEquals(*other.asList());
  }
  // Rings: identity.
  if (isRing() || other.isRing()) {
    if (!isRing() || !other.isRing()) return false;
    return asRing().get() == other.asRing().get();
  }
  // Futures: identity (two handles are equal iff they share a settlement).
  if (isFuture() || other.isFuture()) {
    if (!isFuture() || !other.isFuture()) return false;
    return asFuture().get() == other.asFuture().get();
  }
  if (isNothing() && other.isNothing()) return true;
  if (isBoolean() || other.isBoolean()) {
    if (isBoolean() && other.isBoolean()) {
      return std::get<bool>(v_) == std::get<bool>(other.v_);
    }
    return false;
  }
  // Snap! compares numerically whenever both sides look numeric — each
  // side is parsed at most once (and long text not even that, its parse
  // is cached on the shared rep)…
  double a = 0;
  double b = 0;
  if (numericValue(a) && other.numericValue(b)) return a == b;
  // …and case-insensitively otherwise. Text-vs-text is allocation-free;
  // the mixed-kind fallback renders the non-text side first.
  std::string leftOwned;
  std::string rightOwned;
  std::string_view left;
  std::string_view right;
  if (isText()) {
    left = textView();
  } else {
    leftOwned = asText();
    left = leftOwned;
  }
  if (other.isText()) {
    right = other.textView();
  } else {
    rightOwned = other.asText();
    right = rightOwned;
  }
  return strings::equalsIgnoreCase(left, right);
}

std::string Value::display() const {
  switch (kind()) {
    case ValueKind::ListRef: return asList()->display();
    case ValueKind::RingRef:
      return asRing()->kind() == RingKind::Reporter ? "(reporter ring)"
                                                    : "(command ring)";
    case ValueKind::FutureRef: return asFuture()->display();
    default: return asText();
  }
}

bool Value::isTransferable() const {
  switch (kind()) {
    case ValueKind::RingRef:
    case ValueKind::FutureRef:
      return false;
    case ValueKind::ListRef:
      return asList()->isTransferable();
    default:
      return true;
  }
}

Value Value::structuredClone() const {
  switch (kind()) {
    case ValueKind::RingRef:
      throw PurityError("rings cannot be structured-cloned to a worker");
    case ValueKind::FutureRef:
      throw PurityError(
          "futures cannot be structured-cloned to a worker: a promise is "
          "a handle into its owning process, not data");
    case ValueKind::ListRef:
      return Value(asList()->snapshotClone());
    default:
      // Scalars are values; text is immutable and shared (copying the
      // handle is the clone).
      return *this;
  }
}

// ---------------------------------------------------------------------------
// List — COW core.
// ---------------------------------------------------------------------------

List::List(std::vector<Value> items) {
  if (!items.empty()) {
    buf_ = std::make_shared<Buffer>(std::move(items));
  }
}

ListPtr List::makeMapped(const Value* data, size_t size,
                         std::shared_ptr<const void> region,
                         bool flatShareable) {
  auto list = std::make_shared<List>();
  if (size == 0) return list;  // empty list needs no buffer (or region)
  list->buf_ = std::make_shared<Buffer>(data, size, std::move(region));
  if (flatShareable) {
    list->auditWord_.store(
        (uint64_t(1) << 2) | uint64_t(FlatAudit::Shareable),
        std::memory_order_release);
  }
  return list;
}

void List::detachForWrite() {
  if (buf_ && (buf_->mapped() || buf_.use_count() > 1)) {
    // The buffer is held by a pending snapshot (or this node is one), or
    // aliases an immutable mapped region. Shared/mapped buffers are
    // sublist-free by construction — snapshotClone rebuilds any buffer
    // containing ListRefs, and the persist layer materializes spines —
    // so this shallow copy-out is the full deferred deep copy: scalars
    // copy, texts bump a refcount.
    auto fresh = std::make_shared<Buffer>();
    fresh->owned.assign(buf_->data(), buf_->data() + buf_->size());
    buf_ = std::move(fresh);
  }
  version_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Value>& List::writable() {
  detachForWrite();
  if (!buf_) buf_ = std::make_shared<Buffer>();
  return buf_->owned;
}

const Value& List::item(size_t index1) const {
  const ItemSpan items = this->items();
  if (index1 < 1 || index1 > items.size()) {
    throw IndexError("item " + std::to_string(index1) + " of a list of " +
                     std::to_string(items.size()));
  }
  return items[index1 - 1];
}

void List::add(Value value) { writable().push_back(std::move(value)); }

void List::insertAt(size_t index1, Value value) {
  if (index1 < 1 || index1 > length() + 1) {
    throw IndexError("insert at " + std::to_string(index1) +
                     " of a list of " + std::to_string(length()));
  }
  std::vector<Value>& items = writable();
  items.insert(items.begin() + static_cast<ptrdiff_t>(index1 - 1),
               std::move(value));
}

void List::replaceAt(size_t index1, Value value) {
  if (index1 < 1 || index1 > length()) {
    throw IndexError("item " + std::to_string(index1) + " of a list of " +
                     std::to_string(length()));
  }
  writable()[index1 - 1] = std::move(value);
}

void List::removeAt(size_t index1) {
  if (index1 < 1 || index1 > length()) {
    throw IndexError("delete " + std::to_string(index1) + " of a list of " +
                     std::to_string(length()));
  }
  std::vector<Value>& items = writable();
  items.erase(items.begin() + static_cast<ptrdiff_t>(index1 - 1));
}

void List::clear() {
  version_.fetch_add(1, std::memory_order_relaxed);
  if (buf_ && (buf_->mapped() || buf_.use_count() > 1)) {
    buf_.reset();  // the snapshot/mapping keeps the old buffer; we go empty
  } else if (buf_) {
    buf_->owned.clear();
  }
}

void List::reserve(size_t capacity) { writable().reserve(capacity); }

std::vector<Value>& List::mutableItems() { return writable(); }

bool List::contains(const Value& probe) const {
  for (const Value& item : items()) {
    if (item.equals(probe)) return true;
  }
  return false;
}

bool List::deepEquals(const List& other) const {
  std::vector<const List*> path;
  return deepEqualsGuarded(other, path);
}

bool List::deepEqualsGuarded(const List& other,
                             std::vector<const List*>& path) const {
  const ItemSpan mine = items();
  const ItemSpan theirs = other.items();
  if (mine.size() != theirs.size()) return false;
  if (this == &other) return true;
  if (std::find(path.begin(), path.end(), this) != path.end()) {
    throw TypeError("cannot compare cyclic lists");
  }
  path.push_back(this);
  for (size_t i = 0; i < mine.size(); ++i) {
    const Value& a = mine[i];
    const Value& b = theirs[i];
    bool same;
    if (a.isList() && b.isList()) {
      same = a.asList()->deepEqualsGuarded(*b.asList(), path);
    } else {
      same = a.equals(b);
    }
    if (!same) {
      path.pop_back();
      return false;
    }
  }
  path.pop_back();
  return true;
}

ListPtr List::deepCopy() const {
  std::vector<const List*> path;
  return deepCopyGuarded(path);
}

ListPtr List::deepCopyGuarded(std::vector<const List*>& path) const {
  if (std::find(path.begin(), path.end(), this) != path.end()) {
    throw TypeError("cannot deep-copy a cyclic list");
  }
  path.push_back(this);
  auto copy = List::make();
  const ItemSpan source = items();
  if (!source.empty()) {
    std::vector<Value>& target = copy->writable();
    target.reserve(source.size());
    for (const Value& item : source) {
      if (item.isList()) {
        target.push_back(Value(item.asList()->deepCopyGuarded(path)));
      } else {
        target.push_back(item);
      }
    }
  }
  path.pop_back();
  return copy;
}

std::string List::display() const {
  std::string out;
  std::vector<const List*> path;
  displayGuarded(out, path);
  return out;
}

void List::displayGuarded(std::string& out,
                          std::vector<const List*>& path) const {
  if (std::find(path.begin(), path.end(), this) != path.end()) {
    out += "(cyclic list)";
    return;
  }
  path.push_back(this);
  out += "[";
  const ItemSpan source = items();
  for (size_t i = 0; i < source.size(); ++i) {
    if (i != 0) out += ", ";
    if (source[i].isList()) {
      source[i].asList()->displayGuarded(out, path);
    } else {
      out += source[i].display();
    }
  }
  out += "]";
  path.pop_back();
}

List::FlatAudit List::flatAudit() const {
  if (!buf_) return FlatAudit::Shareable;
  const uint64_t version = version_.load(std::memory_order_relaxed);
  const uint64_t cached = auditWord_.load(std::memory_order_acquire);
  if ((cached >> 2) == version + 1) return FlatAudit(cached & 3u);
  FlatAudit audit = FlatAudit::Shareable;
  for (const Value& item : items()) {
    if (item.isList()) {
      audit = FlatAudit::HasSublists;
      break;
    }
    if (item.isRing() || item.isFuture()) audit = FlatAudit::HasRings;
  }
  auditWord_.store(((version + 1) << 2) | uint64_t(audit),
                   std::memory_order_release);
  return audit;
}

bool List::isTransferable() const {
  std::vector<const List*> path;
  return transferableGuarded(path);
}

bool List::transferableGuarded(std::vector<const List*>& path) const {
  switch (flatAudit()) {
    case FlatAudit::Shareable: return true;
    case FlatAudit::HasRings: return false;
    default: break;
  }
  if (std::find(path.begin(), path.end(), this) != path.end()) {
    return false;  // cyclic lists cannot be structured-cloned
  }
  path.push_back(this);
  for (const Value& item : items()) {
    if (item.isRing() || item.isFuture() ||
        (item.isList() && !item.asList()->transferableGuarded(path))) {
      path.pop_back();
      return false;
    }
  }
  path.pop_back();
  return true;
}

ListPtr List::snapshotClone() const {
  std::vector<const List*> path;
  return snapshotCloneGuarded(path);
}

ListPtr List::snapshotCloneGuarded(std::vector<const List*>& path) const {
  auto clone = std::make_shared<List>();
  switch (flatAudit()) {
    case FlatAudit::Shareable: {
      // O(1): the snapshot shares the buffer; whichever side mutates
      // first pays for the copy at its detach gate.
      clone->buf_ = buf_;
      // Seed the clone's audit cache — its buffer is known shareable.
      clone->auditWord_.store((uint64_t(1) << 2) |
                                  uint64_t(FlatAudit::Shareable),
                              std::memory_order_release);
      return clone;
    }
    case FlatAudit::HasRings: {
      // The audit lumps rings and futures (both non-transferable); pick
      // the accurate message on this cold path.
      for (const Value& item : items()) {
        if (item.isFuture()) {
          throw PurityError(
              "futures cannot be structured-cloned to a worker: a promise "
              "is a handle into its owning process, not data");
        }
      }
      throw PurityError("rings cannot be structured-cloned to a worker");
    }
    default:
      break;
  }
  // Nested: rebuild the spine with fresh nodes so no mutable List object
  // is reachable from both the live tree and the snapshot; leaf buffers
  // and texts are shared.
  if (std::find(path.begin(), path.end(), this) != path.end()) {
    throw PurityError("cannot structured-clone a cyclic list");
  }
  path.push_back(this);
  auto buffer = std::make_shared<Buffer>();
  buffer->owned.reserve(buf_->size());
  for (const Value& item : items()) {
    if (item.isList()) {
      buffer->owned.push_back(
          Value(item.asList()->snapshotCloneGuarded(path)));
    } else if (item.isRing()) {
      path.pop_back();
      throw PurityError("rings cannot be structured-cloned to a worker");
    } else if (item.isFuture()) {
      path.pop_back();
      throw PurityError(
          "futures cannot be structured-cloned to a worker: a promise is "
          "a handle into its owning process, not data");
    } else {
      buffer->owned.push_back(item);
    }
  }
  path.pop_back();
  clone->buf_ = std::move(buffer);
  return clone;
}

// ---------------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------------

Ring::Ring(RingKind kind, BlockPtr expression, ScriptPtr script,
           std::vector<std::string> formals, EnvPtr captured)
    : kind_(kind),
      expression_(std::move(expression)),
      script_(std::move(script)),
      formals_(std::move(formals)),
      captured_(std::move(captured)) {}

RingPtr Ring::reporter(BlockPtr expression, std::vector<std::string> formals,
                       EnvPtr captured) {
  if (!expression) throw Error("reporter ring requires an expression");
  return std::make_shared<Ring>(RingKind::Reporter, std::move(expression),
                                nullptr, std::move(formals),
                                std::move(captured));
}

RingPtr Ring::command(ScriptPtr script, std::vector<std::string> formals,
                      EnvPtr captured) {
  if (!script) throw Error("command ring requires a script");
  return std::make_shared<Ring>(RingKind::Command, nullptr, std::move(script),
                                std::move(formals), std::move(captured));
}

}  // namespace psnap::blocks
