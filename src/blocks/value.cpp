#include "blocks/value.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace psnap::blocks {

const char* valueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::Nothing: return "nothing";
    case ValueKind::Number: return "number";
    case ValueKind::Boolean: return "boolean";
    case ValueKind::Text: return "text";
    case ValueKind::ListRef: return "list";
    case ValueKind::RingRef: return "ring";
  }
  return "unknown";
}

ValueKind Value::kind() const {
  switch (v_.index()) {
    case 0: return ValueKind::Nothing;
    case 1: return ValueKind::Number;
    case 2: return ValueKind::Boolean;
    case 3: return ValueKind::Text;
    case 4: return ValueKind::ListRef;
    default: return ValueKind::RingRef;
  }
}

double Value::asNumber() const {
  switch (kind()) {
    case ValueKind::Number:
      return std::get<double>(v_);
    case ValueKind::Boolean:
      return std::get<bool>(v_) ? 1.0 : 0.0;
    case ValueKind::Text: {
      double parsed = 0;
      if (strings::parseNumber(std::get<std::string>(v_), parsed)) {
        return parsed;
      }
      // Snap! treats empty text as 0 in arithmetic contexts.
      if (strings::trim(std::get<std::string>(v_)).empty()) return 0.0;
      throw TypeError("expecting a number but getting text \"" +
                      std::get<std::string>(v_) + "\"");
    }
    case ValueKind::Nothing:
      return 0.0;
    default:
      throw TypeError(std::string("expecting a number but getting a ") +
                      valueKindName(kind()));
  }
}

long long Value::asInteger() const {
  double n = asNumber();
  if (!std::isfinite(n)) throw TypeError("expecting a finite integer");
  return static_cast<long long>(std::llround(n));
}

std::string Value::asText() const {
  switch (kind()) {
    case ValueKind::Nothing: return "";
    case ValueKind::Number: return strings::formatNumber(std::get<double>(v_));
    case ValueKind::Boolean: return std::get<bool>(v_) ? "true" : "false";
    case ValueKind::Text: return std::get<std::string>(v_);
    default:
      throw TypeError(std::string("expecting text but getting a ") +
                      valueKindName(kind()));
  }
}

bool Value::asBoolean() const {
  switch (kind()) {
    case ValueKind::Boolean:
      return std::get<bool>(v_);
    case ValueKind::Text: {
      const std::string lowered =
          strings::toLower(std::get<std::string>(v_));
      if (lowered == "true") return true;
      if (lowered == "false") return false;
      break;
    }
    default:
      break;
  }
  throw TypeError(std::string("expecting a boolean but getting a ") +
                  valueKindName(kind()));
}

const ListPtr& Value::asList() const {
  if (!isList()) {
    throw TypeError(std::string("expecting a list but getting a ") +
                    valueKindName(kind()));
  }
  return std::get<ListPtr>(v_);
}

const RingPtr& Value::asRing() const {
  if (!isRing()) {
    throw TypeError(std::string("expecting a ring but getting a ") +
                    valueKindName(kind()));
  }
  return std::get<RingPtr>(v_);
}

namespace {

bool looksNumeric(const Value& value) {
  switch (value.kind()) {
    case ValueKind::Number:
      return true;
    case ValueKind::Text: {
      double parsed = 0;
      return strings::parseNumber(value.asText(), parsed);
    }
    default:
      return false;
  }
}

}  // namespace

bool Value::equals(const Value& other) const {
  // Lists: deep structural equality.
  if (isList() || other.isList()) {
    if (!isList() || !other.isList()) return false;
    return asList()->deepEquals(*other.asList());
  }
  // Rings: identity.
  if (isRing() || other.isRing()) {
    if (!isRing() || !other.isRing()) return false;
    return asRing().get() == other.asRing().get();
  }
  if (isNothing() && other.isNothing()) return true;
  if (isBoolean() || other.isBoolean()) {
    if (isBoolean() && other.isBoolean()) {
      return std::get<bool>(v_) == std::get<bool>(other.v_);
    }
    return false;
  }
  // Snap! compares numerically whenever both sides look numeric…
  if (looksNumeric(*this) && looksNumeric(other)) {
    return asNumber() == other.asNumber();
  }
  // …and case-insensitively otherwise.
  return strings::toLower(asText()) == strings::toLower(other.asText());
}

std::string Value::display() const {
  switch (kind()) {
    case ValueKind::ListRef: return asList()->display();
    case ValueKind::RingRef:
      return asRing()->kind() == RingKind::Reporter ? "(reporter ring)"
                                                    : "(command ring)";
    default: return asText();
  }
}

bool Value::isTransferable() const {
  switch (kind()) {
    case ValueKind::RingRef:
      return false;
    case ValueKind::ListRef: {
      for (const Value& item : asList()->items()) {
        if (!item.isTransferable()) return false;
      }
      return true;
    }
    default:
      return true;
  }
}

Value Value::structuredClone() const {
  switch (kind()) {
    case ValueKind::RingRef:
      throw PurityError("rings cannot be structured-cloned to a worker");
    case ValueKind::ListRef: {
      auto copy = List::make();
      copy->items().reserve(asList()->length());
      for (const Value& item : asList()->items()) {
        copy->add(item.structuredClone());
      }
      return Value(copy);
    }
    default:
      return *this;
  }
}

const Value& List::item(size_t index1) const {
  if (index1 < 1 || index1 > items_.size()) {
    throw IndexError("item " + std::to_string(index1) + " of a list of " +
                     std::to_string(items_.size()));
  }
  return items_[index1 - 1];
}

Value& List::item(size_t index1) {
  if (index1 < 1 || index1 > items_.size()) {
    throw IndexError("item " + std::to_string(index1) + " of a list of " +
                     std::to_string(items_.size()));
  }
  return items_[index1 - 1];
}

void List::insertAt(size_t index1, Value value) {
  if (index1 < 1 || index1 > items_.size() + 1) {
    throw IndexError("insert at " + std::to_string(index1) +
                     " of a list of " + std::to_string(items_.size()));
  }
  items_.insert(items_.begin() + static_cast<ptrdiff_t>(index1 - 1),
                std::move(value));
}

void List::replaceAt(size_t index1, Value value) {
  item(index1) = std::move(value);
}

void List::removeAt(size_t index1) {
  if (index1 < 1 || index1 > items_.size()) {
    throw IndexError("delete " + std::to_string(index1) + " of a list of " +
                     std::to_string(items_.size()));
  }
  items_.erase(items_.begin() + static_cast<ptrdiff_t>(index1 - 1));
}

bool List::contains(const Value& probe) const {
  for (const Value& item : items_) {
    if (item.equals(probe)) return true;
  }
  return false;
}

bool List::deepEquals(const List& other) const {
  if (items_.size() != other.items_.size()) return false;
  for (size_t i = 0; i < items_.size(); ++i) {
    if (!items_[i].equals(other.items_[i])) return false;
  }
  return true;
}

ListPtr List::deepCopy() const {
  auto copy = List::make();
  copy->items().reserve(items_.size());
  for (const Value& item : items_) {
    if (item.isList()) {
      copy->add(Value(item.asList()->deepCopy()));
    } else {
      copy->add(item);
    }
  }
  return copy;
}

std::string List::display() const {
  std::string out = "[";
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i != 0) out += ", ";
    out += items_[i].display();
  }
  out += "]";
  return out;
}

Ring::Ring(RingKind kind, BlockPtr expression, ScriptPtr script,
           std::vector<std::string> formals, EnvPtr captured)
    : kind_(kind),
      expression_(std::move(expression)),
      script_(std::move(script)),
      formals_(std::move(formals)),
      captured_(std::move(captured)) {}

RingPtr Ring::reporter(BlockPtr expression, std::vector<std::string> formals,
                       EnvPtr captured) {
  if (!expression) throw Error("reporter ring requires an expression");
  return std::make_shared<Ring>(RingKind::Reporter, std::move(expression),
                                nullptr, std::move(formals),
                                std::move(captured));
}

RingPtr Ring::command(ScriptPtr script, std::vector<std::string> formals,
                      EnvPtr captured) {
  if (!script) throw Error("command ring requires a script");
  return std::make_shared<Ring>(RingKind::Command, nullptr, std::move(script),
                                std::move(formals), std::move(captured));
}

}  // namespace psnap::blocks
