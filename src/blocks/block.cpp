#include "blocks/block.hpp"

#include "support/error.hpp"

namespace psnap::blocks {

const Value& Input::literalValue() const {
  if (!isLiteral()) throw BlockError("input slot holds no literal");
  return literal_;
}

const BlockPtr& Input::block() const {
  if (!isBlock()) throw BlockError("input slot holds no nested block");
  return block_;
}

const ScriptPtr& Input::script() const {
  if (!isScript()) throw BlockError("input slot holds no script");
  return script_;
}

namespace {

void displayInput(const Input& input, std::string& out) {
  switch (input.kind()) {
    case InputKind::Literal:
      out += input.literalValue().display();
      break;
    case InputKind::BlockExpr:
      out += input.block()->display();
      break;
    case InputKind::ScriptSlot:
      out += "{ " + input.script()->display() + " }";
      break;
    case InputKind::Empty:
      out += "_";
      break;
    case InputKind::Collapsed:
      out += "<collapsed>";
      break;
  }
}

void collectFromBlock(const Block& block, std::vector<const Input*>& out);

void collectFromScript(const Script& script,
                       std::vector<const Input*>& out) {
  for (const BlockPtr& block : script.blocks()) {
    collectFromBlock(*block, out);
  }
}

void collectFromBlock(const Block& block, std::vector<const Input*>& out) {
  for (const Input& input : block.inputs()) {
    switch (input.kind()) {
      case InputKind::Empty:
        out.push_back(&input);
        break;
      case InputKind::BlockExpr:
        collectFromBlock(*input.block(), out);
        break;
      case InputKind::ScriptSlot:
        collectFromScript(*input.script(), out);
        break;
      default:
        break;
    }
  }
}

}  // namespace

std::string Block::display() const {
  std::string out = "(" + opcode_;
  for (const Input& input : inputs_) {
    out += ' ';
    displayInput(input, out);
  }
  out += ')';
  return out;
}

std::string Script::display() const {
  std::string out;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (i != 0) out += '\n';
    out += blocks_[i]->display();
  }
  return out;
}

std::vector<const Input*> collectEmptySlots(const Block& root) {
  std::vector<const Input*> out;
  collectFromBlock(root, out);
  return out;
}

std::vector<const Input*> collectEmptySlots(const Script& root) {
  std::vector<const Input*> out;
  collectFromScript(root, out);
  return out;
}

size_t countEmptySlots(const Ring& ring) { return ring.emptySlots().size(); }

const std::vector<const Input*>& Ring::emptySlots() const {
  std::call_once(emptySlotsOnce_, [this] {
    emptySlots_ = kind() == RingKind::Reporter
                      ? collectEmptySlots(*expression())
                      : collectEmptySlots(*script());
  });
  return emptySlots_;
}

size_t emptySlotOrdinal(const Ring& ring, const Input* slot) {
  const std::vector<const Input*>& slots = ring.emptySlots();
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i] == slot) return i;
  }
  throw BlockError("empty slot is not part of the ring body");
}

}  // namespace psnap::blocks
