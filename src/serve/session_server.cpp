#include "serve/session_server.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <utility>

#include "blocks/registry.hpp"
#include "core/parallel_blocks.hpp"
#include "persist/catalog.hpp"
#include "support/fault.hpp"

namespace psnap::serve {

const char* sessionStateName(SessionState state) {
  switch (state) {
    case SessionState::Active:
      return "active";
    case SessionState::Completed:
      return "completed";
    case SessionState::Failed:
      return "failed";
    case SessionState::Shed:
      return "shed";
  }
  return "?";
}

SessionServer::SessionServer(ServerConfig config)
    : config_(config),
      registry_(&blocks::BlockRegistry::standard()),
      primitives_(core::fullPrimitiveTable()),
      hub_(std::make_shared<vm::WakeHub>()) {}

SessionServer::~SessionServer() {
  // Trip every live tenant's root before the managers destruct, so any
  // in-flight pool work unwinds at its next checkpoint instead of being
  // waited on to natural completion.
  for (auto& session : active_) {
    session->root->cancel("server shutting down");
    session->manager->stopAll();
  }
}

uint64_t SessionServer::admit(SessionWorkload workload) {
  const uint64_t id = nextId_;
  try {
    fault::inject(fault::Point::SessionAdmitFailure, id);
    if (active_.size() >= config_.maxSessions) {
      throw SubstrateError(
          "admission rejected: session table at its high-water mark (" +
          std::to_string(config_.maxSessions) + " live sessions); '" +
          workload.label + "' must retry later");
    }
  } catch (const SubstrateError&) {
    ++metrics_.rejected;
    throw;
  }
  ++nextId_;

  // A saturated pool observed in the launch window sheds the *newest*
  // admitted tenant: it has the least sunk work, and the oldest tenants
  // are closest to finishing and releasing capacity on their own.
  try {
    fault::inject(fault::Point::PoolSaturation, id);
  } catch (const SubstrateError& overload) {
    ++metrics_.overloadSheds;
    shedNewestActive(std::string("overload shed: ") + overload.what());
  }

  auto session = std::make_unique<Session>();
  session->id = id;
  session->workload = std::move(workload);
  session->admittedAtFrame = frame_;
  session->root =
      config_.sessionDeadlineSeconds > 0
          ? CancelToken::withDeadline(config_.sessionDeadlineSeconds)
          : CancelToken::create();
  session->stats.setParent(&workers::processSubstrateStats());
  session->manager =
      std::make_unique<sched::ThreadManager>(registry_, &primitives_);
  // All tenants park on the server's hub: a completion arriving for any
  // session can rouse a server asleep in runUntilQuiet(). Must precede
  // workload.start(), which may already park processes.
  session->manager->setWakeHub(hub_);
  session->manager->setDefaultCancelToken(session->root);
  session->manager->setSliceSteps(config_.sliceSteps);
  session->manager->setMaxWorkers(config_.maxWorkers);
  if (!config_.nativeTier) session->manager->setNativeTier(false);
  ++metrics_.admitted;

  {
    workers::StatsScope scope(session->stats);
    try {
      session->state = session->workload.start(*session->manager);
    } catch (...) {
      // Launch crash containment: the tenant failed to start, the slot is
      // recycled, and the server carries on.
      contain(*session, std::current_exception());
      finalize(std::move(session));
      return id;
    }
  }
  active_.push_back(std::move(session));
  return id;
}

void SessionServer::runSessionFrame(Session& session) {
  // Everything this tenant executes on the server thread — and, via
  // capture-at-construction in TaskGroup/Parallel/mr::Job, everything its
  // frame hands to pool workers — records into its own ledger.
  workers::StatsScope scope(session.stats);
  try {
    // Wake parked processes whose completion arrived and fail those whose
    // deadline tripped while parked, *before* deciding whether the tenant
    // has anything to run.
    session.manager->pollParked();
    if (!session.manager->hasReadyWork()) {
      // Every live process is parked on an in-flight completion (or the
      // manager just went idle and the recycle pass will collect it).
      // Skip the slice and charge nothing: a blocked tenant must not
      // burn its frame budget — nor count in the fairness ledger — on
      // frames it could not use.
      return;
    }
    fault::inject(fault::Point::TenantStall, session.id);
    session.manager->runFrame();
    ++session.framesRun;
    watchdog(session);
  } catch (...) {
    // Frame crash containment: only this tenant fails.
    contain(session, std::current_exception());
  }
}

void SessionServer::watchdog(Session& session) {
  if (config_.frameBudget == 0 || session.watchdogFired) return;
  if (session.framesRun < config_.frameBudget) return;
  if (session.manager->idle()) return;
  session.watchdogFired = true;
  session.stats.bump(&workers::SubstrateStats::timeouts);
  // Trip only this tenant's root; its processes raise TimeoutError at
  // their next slice and the failure is attributed to this session id.
  session.root->timeoutNow(
      "session " + std::to_string(session.id) + " ('" +
      session.workload.label + "') exceeded its frame budget (" +
      std::to_string(config_.frameBudget) + " frames)");
}

void SessionServer::runFrame() {
  const auto started = std::chrono::steady_clock::now();
  ++frame_;
  ++metrics_.framesRun;
  const size_t count = active_.size();
  if (count > 0) {
    // Round-robin from a rotating start: over many frames every session
    // spends equal time at the head of the line, so the tenant that runs
    // first (and sees the freshest pool capacity) is not always the same.
    const size_t first = rotate_ % count;
    for (size_t k = 0; k < count; ++k) {
      runSessionFrame(*active_[(first + k) % count]);
    }
    ++rotate_;
  }
  // Recycle slots: contained failures and idle (finished) managers leave
  // the table; admission capacity frees up immediately.
  size_t keep = 0;
  for (size_t i = 0; i < active_.size(); ++i) {
    Session& session = *active_[i];
    if (session.endState != SessionState::Active || session.manager->idle()) {
      finalize(std::move(active_[i]));
    } else {
      if (keep != i) active_[keep] = std::move(active_[i]);
      ++keep;
    }
  }
  active_.resize(keep);
  frameSeconds_.push_back(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count());
}

bool SessionServer::anySessionReady() const {
  for (const auto& session : active_) {
    if (session->manager->hasReadyWork()) return true;
  }
  return false;
}

double SessionServer::parkedWaitBound() const {
  // The nearest parked deadline across all tenants bounds the sleep, so
  // a watchdog/deadline trip on a fully-parked session is still observed
  // promptly (each manager clamps its own bound to [0.1ms, 50ms]).
  double bound = 0.05;
  for (const auto& session : active_) {
    bound = std::min(bound, session->manager->parkedWaitBound());
  }
  return bound;
}

uint64_t SessionServer::runUntilQuiet(uint64_t maxFrames) {
  uint64_t executed = 0;
  while (!quiet()) {
    if (executed >= maxFrames) {
      // Attribution mirrors ThreadManager::runUntilIdle: name who is
      // still active, so the stuck tenant is in the error message.
      constexpr size_t kMaxNamed = 8;
      std::string who;
      size_t named = 0;
      for (const auto& session : active_) {
        if (named == kMaxNamed) {
          who += ", …";
          break;
        }
        if (named > 0) who += ", ";
        who += "session " + std::to_string(session->id) + " ('" +
               session->workload.label + "')";
        ++named;
      }
      throw TimeoutError("server exceeded its frame budget (" +
                         std::to_string(maxFrames) +
                         " frames); still active: " + who);
    }
    // Snapshot before the frame polls each tenant: a completion landing
    // anywhere after its session's poll bumps the stamp and the wait
    // below returns immediately (race-free snapshot-then-recheck).
    const uint64_t seen = hub_->snapshot();
    runFrame();
    ++executed;
    if (!quiet() && !anySessionReady()) {
      // Every tenant is parked on in-flight completions: sleep on the
      // shared hub instead of spinning server frames. The wait round
      // still counts against maxFrames (runaway guard), but no session
      // is charged a frame for it.
      hub_->waitChanged(seen, parkedWaitBound());
    }
  }
  return executed;
}

void SessionServer::cancelSession(uint64_t id, const std::string& reason) {
  for (size_t i = 0; i < active_.size(); ++i) {
    if (active_[i]->id != id) continue;
    shedAt(i, reason);
    return;
  }
}

void SessionServer::publishDataset(const std::string& name,
                                   const std::string& path) {
  // One mapping per file process-wide: the catalog dedupes across
  // servers too. The stored root is pristine — tenants only ever get
  // clones of it.
  datasets_[name] = persist::openSharedList(path);
}

blocks::ListPtr SessionServer::openDataset(const std::string& name) const {
  const auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    throw SubstrateError("no dataset published as \"" + name + "\"");
  }
  return it->second->snapshotClone();
}

bool SessionServer::unpublishDataset(const std::string& name) {
  return datasets_.erase(name) > 0;
}

void SessionServer::shedNewestActive(const std::string& reason) {
  if (active_.empty()) return;
  shedAt(active_.size() - 1, reason);
}

void SessionServer::shedAt(size_t index, const std::string& reason) {
  std::unique_ptr<Session> session = std::move(active_[index]);
  active_.erase(active_.begin() + std::ptrdiff_t(index));
  session->endState = SessionState::Shed;
  session->error = reason;
  session->errorClass = ErrorClass::Cancelled;
  session->stats.bump(&workers::SubstrateStats::cancellations);
  session->root->cancel(reason);
  session->manager->stopAll();
  finalize(std::move(session));
}

void SessionServer::contain(Session& session,
                            const std::exception_ptr& error) {
  session.endState = SessionState::Failed;
  session.errorClass = classifyError(error);
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    session.error = e.what();
  } catch (...) {
    session.error = "unknown error";
  }
  session.outputOk = false;
  // First trip wins: a watchdog/deadline reason already on the root is
  // kept; otherwise in-flight pool work learns why it is unwinding.
  session.root->cancel("session " + std::to_string(session.id) +
                       " failed: " + session.error);
  session.manager->stopAll();
}

void SessionServer::finalize(std::unique_ptr<Session> session) {
  Session& s = *session;
  // Drain (not just read) the manager's capped error log: the serving
  // layer is the long-lived caller the drain API exists for.
  sched::ThreadManager::ErrorDrain drain = s.manager->drainErrors();
  if (s.endState == SessionState::Active) {
    if (!drain.entries.empty()) {
      const sched::ThreadManager::RecordedError& first = drain.entries.front();
      s.endState = SessionState::Failed;
      s.error = "process " + std::to_string(first.processId) + " (" +
                first.opcode + "): " + first.message;
      s.errorClass = first.errorClass;
      s.outputOk = false;
    } else {
      s.endState = SessionState::Completed;
      if (s.workload.check) {
        workers::StatsScope scope(s.stats);
        try {
          s.outputOk = s.workload.check(*s.manager, s.state);
        } catch (...) {
          contain(s, std::current_exception());
        }
      }
    }
  }
  switch (s.endState) {
    case SessionState::Completed:
      ++metrics_.completed;
      break;
    case SessionState::Failed:
      ++metrics_.failed;
      break;
    case SessionState::Shed:
      ++metrics_.shed;
      break;
    case SessionState::Active:
      break;
  }
  finished_.push_back(snapshot(s, frame_));
  // `session` dies here: manager, processes, and project state are freed,
  // in declaration order (state before manager).
}

SessionRecord SessionServer::snapshot(const Session& session,
                                      uint64_t finishedAt) const {
  SessionRecord record;
  record.id = session.id;
  record.label = session.workload.label;
  record.state = session.endState;
  record.error = session.error;
  record.errorClass = session.errorClass;
  record.outputOk = session.outputOk;
  record.framesRun = session.framesRun;
  record.admittedAtFrame = session.admittedAtFrame;
  record.finishedAtFrame = finishedAt;
  record.retries = session.stats.retries.load(std::memory_order_relaxed);
  record.downgrades = session.stats.downgrades.load(std::memory_order_relaxed);
  record.cancellations =
      session.stats.cancellations.load(std::memory_order_relaxed);
  record.timeouts = session.stats.timeouts.load(std::memory_order_relaxed);
  record.tasksSkipped =
      session.stats.tasksSkipped.load(std::memory_order_relaxed);
  return record;
}

std::vector<SessionRecord> SessionServer::records() const {
  std::vector<SessionRecord> all = finished_;
  all.reserve(finished_.size() + active_.size());
  for (const auto& session : active_) {
    all.push_back(snapshot(*session, 0));
  }
  return all;
}

double SessionServer::fairnessSpread(const std::vector<uint64_t>& slices) {
  if (slices.empty()) return 0;
  uint64_t lo = slices.front();
  uint64_t hi = slices.front();
  for (uint64_t s : slices) {
    lo = s < lo ? s : lo;
    hi = s > hi ? s : hi;
  }
  if (lo == 0) return 0;
  return double(hi) / double(lo);
}

}  // namespace psnap::serve
