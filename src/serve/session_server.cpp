#include "serve/session_server.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <optional>
#include <utility>

#include "blocks/registry.hpp"
#include "core/parallel_blocks.hpp"
#include "persist/catalog.hpp"
#include "support/fault.hpp"
#include "workers/worker_pool.hpp"

namespace psnap::serve {

const char* sessionStateName(SessionState state) {
  switch (state) {
    case SessionState::Active:
      return "active";
    case SessionState::Completed:
      return "completed";
    case SessionState::Failed:
      return "failed";
    case SessionState::Shed:
      return "shed";
    case SessionState::Drained:
      return "drained";
  }
  return "?";
}

SessionServer::SessionServer(ServerConfig config)
    : config_(config),
      registry_(&blocks::BlockRegistry::standard()),
      primitives_(core::fullPrimitiveTable()),
      hub_(std::make_shared<vm::WakeHub>()) {}

SessionServer::~SessionServer() {
  // Trip every live tenant's root before the managers destruct, so any
  // in-flight pool work unwinds at its next checkpoint instead of being
  // waited on to natural completion.
  for (auto& session : active_) {
    session->root->cancel("server shutting down");
    session->manager->stopAll();
    // Settle any in-flight checkpoint write (it holds the captured
    // project by value, not the session, but its counters land here) and
    // end the stats lease so async work can no longer charge the freed
    // scope.
    if (session->pendingWrite) session->pendingWrite->group->wait();
    workers::retireStatsScope(session->stats);
  }
}

std::unique_ptr<SessionServer::Session> SessionServer::makeSession(
    uint64_t id, SessionWorkload workload) {
  auto session = std::make_unique<Session>();
  session->id = id;
  session->workload = std::move(workload);
  session->admittedAtFrame = frame_;
  session->root =
      config_.sessionDeadlineSeconds > 0
          ? CancelToken::withDeadline(config_.sessionDeadlineSeconds)
          : CancelToken::create();
  session->stats.setParent(&workers::processSubstrateStats());
  session->manager =
      std::make_unique<sched::ThreadManager>(registry_, &primitives_);
  // All tenants park on the server's hub: a completion arriving for any
  // session can rouse a server asleep in runUntilQuiet(). Must precede
  // workload.start(), which may already park processes.
  session->manager->setWakeHub(hub_);
  session->manager->setDefaultCancelToken(session->root);
  session->manager->setSliceSteps(config_.sliceSteps);
  session->manager->setMaxWorkers(config_.maxWorkers);
  if (!config_.nativeTier) session->manager->setNativeTier(false);
  return session;
}

uint64_t SessionServer::admit(SessionWorkload workload) {
  const uint64_t id = nextId_;
  try {
    if (draining_) {
      throw SubstrateError("admission rejected: server is draining; '" +
                           workload.label + "' must go elsewhere");
    }
    fault::inject(fault::Point::SessionAdmitFailure, id);
    if (active_.size() >= config_.maxSessions) {
      throw SubstrateError(
          "admission rejected: session table at its high-water mark (" +
          std::to_string(config_.maxSessions) + " live sessions); '" +
          workload.label + "' must retry later");
    }
  } catch (const SubstrateError&) {
    ++metrics_.rejected;
    throw;
  }
  ++nextId_;

  // A saturated pool observed in the launch window sheds the *newest*
  // admitted tenant: it has the least sunk work, and the oldest tenants
  // are closest to finishing and releasing capacity on their own.
  try {
    fault::inject(fault::Point::PoolSaturation, id);
  } catch (const SubstrateError& overload) {
    ++metrics_.overloadSheds;
    shedNewestActive(std::string("overload shed: ") + overload.what());
  }

  auto session = makeSession(id, std::move(workload));
  ++metrics_.admitted;

  {
    workers::StatsScope scope(session->stats);
    try {
      session->state = session->workload.start(*session->manager);
    } catch (...) {
      // Launch crash containment: the tenant failed to start, the slot is
      // recycled, and the server carries on.
      contain(*session, std::current_exception());
      finalize(std::move(session));
      return id;
    }
  }
  // Lease the tenant's stats scope for async attribution (the native
  // tier's fire-and-forget compiles); retired at finalize/restart-park.
  workers::registerStatsScope(session->stats);
  active_.push_back(std::move(session));
  return id;
}

void SessionServer::runSessionFrame(Session& session) {
  // Everything this tenant executes on the server thread — and, via
  // capture-at-construction in TaskGroup/Parallel/mr::Job, everything its
  // frame hands to pool workers — records into its own ledger.
  workers::StatsScope scope(session.stats);
  try {
    // Wake parked processes whose completion arrived and fail those whose
    // deadline tripped while parked, *before* deciding whether the tenant
    // has anything to run.
    session.manager->pollParked();
    if (!session.manager->hasReadyWork()) {
      // Every live process is parked on an in-flight completion (or the
      // manager just went idle and the recycle pass will collect it).
      // Skip the slice and charge nothing: a blocked tenant must not
      // burn its frame budget — nor count in the fairness ledger — on
      // frames it could not use.
      return;
    }
    fault::inject(fault::Point::TenantStall, session.id);
    session.manager->runFrame();
    ++session.framesRun;
    watchdog(session);
    maybeCheckpoint(session);
  } catch (...) {
    // Frame crash containment: only this tenant fails.
    contain(session, std::current_exception());
  }
}

void SessionServer::observeCheckpointWrite(Session& session, bool wait) {
  if (!session.pendingWrite) return;
  PendingWrite& pending = *session.pendingWrite;
  if (wait) {
    // wait() drains unclaimed tasks on this thread, so the settle
    // completes even if the pool never picked the write up.
    pending.group->wait();
  } else if (!pending.group->done()) {
    return;
  }
  if (pending.ok.load(std::memory_order_acquire)) {
    ++session.checkpointsWritten;
    ++metrics_.checkpointsWritten;
    session.hasFingerprint = true;
    session.lastFingerprint = pending.fingerprint;
    session.checkpointSeq = pending.seq + 1;
  } else {
    // The write died (CheckpointWriteFailure or real I/O). The previous
    // generation is still valid; the same seq is retried next interval.
    ++metrics_.checkpointFailures;
  }
  session.pendingWrite.reset();
}

void SessionServer::maybeCheckpoint(Session& session) {
  if (!supervised() || !session.workload.recoverable()) return;
  observeCheckpointWrite(session, /*wait=*/false);
  if (session.framesRun - session.lastCheckpointFrame <
      config_.checkpointIntervalFrames) {
    return;
  }
  // One write in flight per session: while the previous one is still on
  // the pool, re-check next frame rather than queueing a second.
  if (session.pendingWrite) return;
  project::Project project;
  try {
    project = session.workload.capture(*session.manager, session.state);
  } catch (...) {
    // Capture failed (e.g. a transient ring value is in a variable).
    // The session is unaffected; try again next interval.
    ++metrics_.checkpointFailures;
    session.lastCheckpointFrame = session.framesRun;
    return;
  }
  session.lastCheckpointFrame = session.framesRun;
  const uint64_t fingerprint = session.hasher.fingerprint(project);
  if (session.hasFingerprint && fingerprint == session.lastFingerprint) {
    // The COW version stamps say nothing changed since the last written
    // checkpoint: skip the serialization and the disk entirely.
    ++session.checkpointsSkipped;
    ++metrics_.checkpointsSkipped;
    return;
  }
  CheckpointMeta meta;
  meta.sessionId = session.id;
  meta.seq = session.checkpointSeq;
  meta.label = session.workload.label;
  meta.framesRun = totalFrames(session);
  meta.restarts = session.restarts;
  meta.clock = session.manager->clockState();
  auto pending = std::make_shared<PendingWrite>();
  pending->fingerprint = fingerprint;
  pending->seq = meta.seq;
  const std::string dir = config_.checkpointDir;
  // The task owns its own copies (the captured project's values are COW
  // clones, immune to the session's later mutations); the session is
  // never touched from the pool thread.
  auto task = [dir, meta, project, pending](size_t) {
    try {
      writeCheckpoint(dir, meta, project);
      pending->ok.store(true, std::memory_order_release);
    } catch (...) {
      // Outcome stays false; the server counts it when it observes.
    }
  };
  pending->group = std::make_shared<workers::TaskGroup>(
      std::vector<workers::TaskGroup::Task>{std::move(task)});
  session.pendingWrite = pending;
  try {
    workers::WorkerPool::shared().submit(pending->group);
  } catch (const SubstrateError&) {
    // Pool refused (saturation, shutdown): run the write inline — wait()
    // drains the unclaimed task on this thread.
    pending->group->wait();
  }
}

bool SessionServer::checkpointNow(Session& session) {
  observeCheckpointWrite(session, /*wait=*/true);
  project::Project project;
  try {
    project = session.workload.capture(*session.manager, session.state);
  } catch (...) {
    ++metrics_.checkpointFailures;
    return session.checkpointsWritten > 0;  // an older generation exists
  }
  const uint64_t fingerprint = session.hasher.fingerprint(project);
  if (session.hasFingerprint && fingerprint == session.lastFingerprint) {
    ++session.checkpointsSkipped;
    ++metrics_.checkpointsSkipped;
    return true;  // the newest written generation is already current
  }
  CheckpointMeta meta;
  meta.sessionId = session.id;
  meta.seq = session.checkpointSeq;
  meta.label = session.workload.label;
  meta.framesRun = totalFrames(session);
  meta.restarts = session.restarts;
  meta.clock = session.manager->clockState();
  try {
    writeCheckpoint(config_.checkpointDir, meta, project);
  } catch (...) {
    ++metrics_.checkpointFailures;
    return session.checkpointsWritten > 0;
  }
  ++session.checkpointsWritten;
  ++metrics_.checkpointsWritten;
  session.hasFingerprint = true;
  session.lastFingerprint = fingerprint;
  session.checkpointSeq = meta.seq + 1;
  session.lastCheckpointFrame = session.framesRun;
  return true;
}

void SessionServer::watchdog(Session& session) {
  if (config_.frameBudget == 0 || session.watchdogFired) return;
  if (session.framesRun < config_.frameBudget) return;
  if (session.manager->idle()) return;
  session.watchdogFired = true;
  session.stats.bump(&workers::SubstrateStats::timeouts);
  // Trip only this tenant's root; its processes raise TimeoutError at
  // their next slice and the failure is attributed to this session id.
  session.root->timeoutNow(
      "session " + std::to_string(session.id) + " ('" +
      session.workload.label + "') exceeded its frame budget (" +
      std::to_string(config_.frameBudget) + " frames)");
}

void SessionServer::runFrame() {
  const auto started = std::chrono::steady_clock::now();
  ++frame_;
  ++metrics_.framesRun;
  reviveDue();
  const size_t count = active_.size();
  if (count > 0) {
    // Round-robin from a rotating start: over many frames every session
    // spends equal time at the head of the line, so the tenant that runs
    // first (and sees the freshest pool capacity) is not always the same.
    const size_t first = rotate_ % count;
    for (size_t k = 0; k < count; ++k) {
      runSessionFrame(*active_[(first + k) % count]);
    }
    ++rotate_;
  }
  // Recycle slots: contained failures and idle (finished) managers leave
  // the table; admission capacity frees up immediately.
  size_t keep = 0;
  for (size_t i = 0; i < active_.size(); ++i) {
    Session& session = *active_[i];
    if (session.endState != SessionState::Active || session.manager->idle()) {
      finishOrRestart(std::move(active_[i]));
    } else {
      if (keep != i) active_[keep] = std::move(active_[i]);
      ++keep;
    }
  }
  active_.resize(keep);
  frameSeconds_.push_back(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count());
}

bool SessionServer::anySessionReady() const {
  for (const auto& session : active_) {
    if (session->manager->hasReadyWork()) return true;
  }
  return false;
}

double SessionServer::parkedWaitBound() const {
  // The nearest parked deadline across all tenants bounds the sleep, so
  // a watchdog/deadline trip on a fully-parked session is still observed
  // promptly (each manager clamps its own bound to [0.1ms, 50ms]).
  double bound = 0.05;
  for (const auto& session : active_) {
    bound = std::min(bound, session->manager->parkedWaitBound());
  }
  // Pending restarts are due at a *frame* count, and wait rounds run no
  // frames — keep the sleeps short so backoff frames keep ticking.
  if (!pendingRestarts_.empty()) bound = std::min(bound, 0.0005);
  return bound;
}

uint64_t SessionServer::runUntilQuiet(uint64_t maxFrames) {
  uint64_t executed = 0;
  while (!quiet()) {
    if (executed >= maxFrames) {
      // Attribution mirrors ThreadManager::runUntilIdle: name who is
      // still active, so the stuck tenant is in the error message.
      constexpr size_t kMaxNamed = 8;
      std::string who;
      size_t named = 0;
      for (const auto& session : active_) {
        if (named == kMaxNamed) {
          who += ", …";
          break;
        }
        if (named > 0) who += ", ";
        who += "session " + std::to_string(session->id) + " ('" +
               session->workload.label + "')";
        ++named;
      }
      throw TimeoutError("server exceeded its frame budget (" +
                         std::to_string(maxFrames) +
                         " frames); still active: " + who);
    }
    // Snapshot before the frame polls each tenant: a completion landing
    // anywhere after its session's poll bumps the stamp and the wait
    // below returns immediately (race-free snapshot-then-recheck).
    const uint64_t seen = hub_->snapshot();
    runFrame();
    ++executed;
    if (!quiet() && !anySessionReady()) {
      // Every tenant is parked on in-flight completions: sleep on the
      // shared hub instead of spinning server frames. The wait round
      // still counts against maxFrames (runaway guard), but no session
      // is charged a frame for it.
      hub_->waitChanged(seen, parkedWaitBound());
    }
  }
  return executed;
}

void SessionServer::cancelSession(uint64_t id, const std::string& reason) {
  for (size_t i = 0; i < active_.size(); ++i) {
    if (active_[i]->id != id) continue;
    shedAt(i, reason);
    return;
  }
}

void SessionServer::publishDataset(const std::string& name,
                                   const std::string& path) {
  // One mapping per file process-wide: the catalog dedupes across
  // servers too. The stored root is pristine — tenants only ever get
  // clones of it.
  datasets_[name] = persist::openSharedList(path);
}

blocks::ListPtr SessionServer::openDataset(const std::string& name) const {
  const auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    throw SubstrateError("no dataset published as \"" + name + "\"");
  }
  return it->second->snapshotClone();
}

bool SessionServer::unpublishDataset(const std::string& name) {
  return datasets_.erase(name) > 0;
}

void SessionServer::shedNewestActive(const std::string& reason) {
  if (active_.empty()) return;
  shedAt(active_.size() - 1, reason);
}

void SessionServer::shedAt(size_t index, const std::string& reason) {
  std::unique_ptr<Session> session = std::move(active_[index]);
  active_.erase(active_.begin() + std::ptrdiff_t(index));
  session->endState = SessionState::Shed;
  session->error = reason;
  session->errorClass = ErrorClass::Cancelled;
  session->stats.bump(&workers::SubstrateStats::cancellations);
  session->root->cancel(reason);
  session->manager->stopAll();
  finalize(std::move(session));
}

void SessionServer::contain(Session& session,
                            const std::exception_ptr& error) {
  session.endState = SessionState::Failed;
  session.errorClass = classifyError(error);
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    session.error = e.what();
  } catch (...) {
    session.error = "unknown error";
  }
  session.outputOk = false;
  // First trip wins: a watchdog/deadline reason already on the root is
  // kept; otherwise in-flight pool work learns why it is unwinding.
  session.root->cancel("session " + std::to_string(session.id) +
                       " failed: " + session.error);
  session.manager->stopAll();
}

void SessionServer::resolveOutcome(Session& s) {
  // Drain (not just read) the manager's capped error log: the serving
  // layer is the long-lived caller the drain API exists for.
  sched::ThreadManager::ErrorDrain drain = s.manager->drainErrors();
  if (s.endState != SessionState::Active) return;
  if (!drain.entries.empty()) {
    const sched::ThreadManager::RecordedError& first = drain.entries.front();
    s.endState = SessionState::Failed;
    s.error = "process " + std::to_string(first.processId) + " (" +
              first.opcode + "): " + first.message;
    s.errorClass = first.errorClass;
    s.outputOk = false;
    return;
  }
  s.endState = SessionState::Completed;
  if (s.workload.check) {
    workers::StatsScope scope(s.stats);
    try {
      s.outputOk = s.workload.check(*s.manager, s.state);
    } catch (...) {
      contain(s, std::current_exception());
    }
  }
  if (s.endState == SessionState::Completed && s.workload.output) {
    workers::StatsScope scope(s.stats);
    try {
      s.output = s.workload.output(*s.manager, s.state);
    } catch (...) {
      contain(s, std::current_exception());
    }
  }
}

void SessionServer::finalize(std::unique_ptr<Session> session) {
  Session& s = *session;
  resolveOutcome(s);
  if (supervised() && s.workload.recoverable()) {
    // Settle any in-flight write so its counters land in this record,
    // then clean the disk — except for Drained sessions, whose
    // checkpoints are the hand-off to the successor server.
    observeCheckpointWrite(s, /*wait=*/true);
    if (s.endState != SessionState::Drained) {
      removeCheckpoints(config_.checkpointDir, s.id);
    }
  }
  // End the async-attribution lease before the stats scope is freed.
  workers::retireStatsScope(s.stats);
  switch (s.endState) {
    case SessionState::Completed:
      ++metrics_.completed;
      break;
    case SessionState::Failed:
      ++metrics_.failed;
      break;
    case SessionState::Shed:
      ++metrics_.shed;
      break;
    case SessionState::Drained:
      ++metrics_.drained;
      break;
    case SessionState::Active:
      break;
  }
  finished_.push_back(snapshot(s, frame_));
  // `session` dies here: manager, processes, and project state are freed,
  // in declaration order (state before manager).
}

SessionRecord SessionServer::snapshot(const Session& session,
                                      uint64_t finishedAt) const {
  SessionRecord record;
  record.id = session.id;
  record.label = session.workload.label;
  record.state = session.endState;
  record.error = session.error;
  record.errorClass = session.errorClass;
  record.outputOk = session.outputOk;
  record.framesRun = session.framesRun;
  record.admittedAtFrame = session.admittedAtFrame;
  record.finishedAtFrame = finishedAt;
  // Counters are cumulative across restarts: the baseline carries every
  // previous life's totals, the live scope counts only this one.
  record.retries = session.baseline.retries +
                   session.stats.retries.load(std::memory_order_relaxed);
  record.downgrades = session.baseline.downgrades +
                      session.stats.downgrades.load(std::memory_order_relaxed);
  record.cancellations =
      session.baseline.cancellations +
      session.stats.cancellations.load(std::memory_order_relaxed);
  record.timeouts = session.baseline.timeouts +
                    session.stats.timeouts.load(std::memory_order_relaxed);
  record.tasksSkipped =
      session.baseline.tasksSkipped +
      session.stats.tasksSkipped.load(std::memory_order_relaxed);
  record.checkpointsWritten = session.checkpointsWritten;
  record.checkpointsSkipped = session.checkpointsSkipped;
  record.restarts = session.restarts;
  record.recoveredFrames = session.recoveredFrames;
  record.output = session.output;
  return record;
}

std::vector<SessionRecord> SessionServer::records() const {
  std::vector<SessionRecord> all = finished_;
  all.reserve(finished_.size() + active_.size() + pendingRestarts_.size());
  for (const auto& session : active_) {
    all.push_back(snapshot(*session, 0));
  }
  for (const auto& pending : pendingRestarts_) {
    // Parked for backoff: logically still alive, reported as Active.
    SessionRecord record;
    record.id = pending.id;
    record.label = pending.workload.label;
    record.state = SessionState::Active;
    record.framesRun = pending.framesRun;
    record.admittedAtFrame = pending.admittedAtFrame;
    record.retries = pending.baseline.retries;
    record.downgrades = pending.baseline.downgrades;
    record.cancellations = pending.baseline.cancellations;
    record.timeouts = pending.baseline.timeouts;
    record.tasksSkipped = pending.baseline.tasksSkipped;
    record.checkpointsWritten = pending.checkpointsWritten;
    record.checkpointsSkipped = pending.checkpointsSkipped;
    record.restarts = pending.restarts;
    record.recoveredFrames = pending.recoveredFrames;
    all.push_back(std::move(record));
  }
  return all;
}

void SessionServer::rollBaseline(Session& session) {
  session.baseline.retries +=
      session.stats.retries.load(std::memory_order_relaxed);
  session.baseline.downgrades +=
      session.stats.downgrades.load(std::memory_order_relaxed);
  session.baseline.cancellations +=
      session.stats.cancellations.load(std::memory_order_relaxed);
  session.baseline.timeouts +=
      session.stats.timeouts.load(std::memory_order_relaxed);
  session.baseline.tasksSkipped +=
      session.stats.tasksSkipped.load(std::memory_order_relaxed);
}

bool SessionServer::consumeRestartBudget(PendingRestart& pending) {
  const RestartPolicy& policy = config_.restartPolicy;
  // Erlang-style max-R-in-T: a window with no failures for T frames
  // resets the count, so a long-healthy session earns its budget back.
  if (policy.budgetWindowFrames > 0 && pending.restartsInWindow > 0 &&
      frame_ - pending.windowStart >= policy.budgetWindowFrames) {
    pending.restartsInWindow = 0;
  }
  if (pending.restartsInWindow >= policy.maxRestarts) return false;
  if (pending.restartsInWindow == 0) pending.windowStart = frame_;
  ++pending.restartsInWindow;
  ++pending.restarts;
  pending.dueFrame = frame_ + policy.backoffFrames(pending.restartsInWindow);
  return true;
}

void SessionServer::finishOrRestart(std::unique_ptr<Session> session) {
  Session& s = *session;
  resolveOutcome(s);
  // Only substrate-class failures (and watchdog/deadline timeouts)
  // restart: they describe the environment, not the program. A
  // user-script error is deterministic — replaying it from a checkpoint
  // reproduces it — and a cancellation was deliberate.
  const bool eligible =
      supervised() && !draining_ && s.workload.recoverable() &&
      config_.restartPolicy.maxRestarts > 0 &&
      s.endState == SessionState::Failed &&
      (s.errorClass == ErrorClass::Substrate ||
       s.errorClass == ErrorClass::Timeout);
  if (!eligible) {
    finalize(std::move(session));
    return;
  }
  // Settle the in-flight write first: the revival below loads the newest
  // generation, which may be exactly this one.
  observeCheckpointWrite(s, /*wait=*/true);
  PendingRestart pending;
  pending.id = s.id;
  pending.workload = s.workload;
  pending.restarts = s.restarts;
  pending.restartsInWindow = s.restartsInWindow;
  pending.windowStart = s.windowStart;
  pending.admittedAtFrame = s.admittedAtFrame;
  pending.framesRun = totalFrames(s);
  pending.recoveredFrames = s.recoveredFrames;
  pending.checkpointSeq = s.checkpointSeq;
  pending.checkpointsWritten = s.checkpointsWritten;
  pending.checkpointsSkipped = s.checkpointsSkipped;
  rollBaseline(s);
  pending.baseline = s.baseline;
  if (!consumeRestartBudget(pending)) {
    s.errorClass = ErrorClass::RestartsExhausted;
    s.error = RestartsExhaustedError(
                  "session " + std::to_string(s.id) + " ('" +
                  s.workload.label + "') failed " +
                  std::to_string(pending.restartsInWindow) +
                  " times within its budget window; last error: " + s.error)
                  .what();
    ++metrics_.restartsExhausted;
    finalize(std::move(session));  // terminal: checkpoints are removed
    return;
  }
  // Parked, not finished: no record is pushed — the session is still
  // logically alive and will reappear in active_ when its backoff ends.
  workers::retireStatsScope(s.stats);
  pendingRestarts_.push_back(std::move(pending));
  // The failed life dies here (manager, processes, state); its progress
  // lives on in the newest checkpoint.
}

void SessionServer::reviveDue() {
  if (pendingRestarts_.empty()) return;
  std::vector<PendingRestart> due;
  size_t keep = 0;
  for (size_t i = 0; i < pendingRestarts_.size(); ++i) {
    if (pendingRestarts_[i].dueFrame <= frame_) {
      due.push_back(std::move(pendingRestarts_[i]));
    } else {
      if (keep != i) pendingRestarts_[keep] = std::move(pendingRestarts_[i]);
      ++keep;
    }
  }
  pendingRestarts_.resize(keep);
  for (PendingRestart& pending : due) {
    try {
      // The chaos hook: a restart storm is an environment that keeps
      // killing revivals — each attempt burns budget like any failure.
      fault::inject(fault::Point::RestartStorm, pending.id);
      auto session = makeSession(pending.id, pending.workload);
      Session& s = *session;
      s.restarts = pending.restarts;
      s.restartsInWindow = pending.restartsInWindow;
      s.windowStart = pending.windowStart;
      s.admittedAtFrame = pending.admittedAtFrame;
      s.baseline = pending.baseline;
      s.checkpointSeq = pending.checkpointSeq;
      s.checkpointsWritten = pending.checkpointsWritten;
      s.checkpointsSkipped = pending.checkpointsSkipped;
      std::optional<LoadedCheckpoint> loaded =
          loadNewestCheckpoint(config_.checkpointDir, pending.id);
      {
        workers::StatsScope scope(s.stats);
        if (loaded) {
          s.manager->restoreClockState(loaded->meta.clock);
          s.recoveredFrames = loaded->meta.framesRun;
          s.checkpointSeq = std::max(s.checkpointSeq, loaded->meta.seq + 1);
          s.state = s.workload.resume(*s.manager, loaded->project);
        } else {
          // Every generation was lost or corrupt: restart from scratch.
          s.state = s.workload.start(*s.manager);
        }
      }
      workers::registerStatsScope(s.stats);
      ++metrics_.restarts;
      active_.push_back(std::move(session));
    } catch (...) {
      // The revival itself failed. Burn another budget unit and re-park,
      // or finalize once the budget is spent.
      if (consumeRestartBudget(pending)) {
        pendingRestarts_.push_back(std::move(pending));
        continue;
      }
      std::string message = "unknown error";
      try {
        throw;
      } catch (const std::exception& e) {
        message = e.what();
      } catch (...) {
      }
      ++metrics_.restartsExhausted;
      finalizePending(std::move(pending), SessionState::Failed,
                      RestartsExhaustedError(
                          "session " + std::to_string(pending.id) + " ('" +
                          pending.workload.label +
                          "') could not be revived; last error: " + message)
                          .what(),
                      ErrorClass::RestartsExhausted);
    }
  }
}

void SessionServer::finalizePending(PendingRestart pending, SessionState state,
                                    const std::string& error,
                                    ErrorClass errorClass) {
  SessionRecord record;
  record.id = pending.id;
  record.label = pending.workload.label;
  record.state = state;
  record.error = error;
  record.errorClass = errorClass;
  record.outputOk = state != SessionState::Failed;
  record.framesRun = pending.framesRun;
  record.admittedAtFrame = pending.admittedAtFrame;
  record.finishedAtFrame = frame_;
  record.retries = pending.baseline.retries;
  record.downgrades = pending.baseline.downgrades;
  record.cancellations = pending.baseline.cancellations;
  record.timeouts = pending.baseline.timeouts;
  record.tasksSkipped = pending.baseline.tasksSkipped;
  record.checkpointsWritten = pending.checkpointsWritten;
  record.checkpointsSkipped = pending.checkpointsSkipped;
  record.restarts = pending.restarts;
  record.recoveredFrames = pending.recoveredFrames;
  switch (state) {
    case SessionState::Failed:
      ++metrics_.failed;
      // Terminal failure: the checkpoints will never be read again.
      removeCheckpoints(config_.checkpointDir, pending.id);
      break;
    case SessionState::Drained:
      ++metrics_.drained;  // checkpoints stay for the successor
      break;
    default:
      break;
  }
  finished_.push_back(std::move(record));
}

size_t SessionServer::drain() {
  draining_ = true;
  size_t drained = 0;
  std::vector<std::unique_ptr<Session>> sessions = std::move(active_);
  active_.clear();
  for (auto& session : sessions) {
    Session& s = *session;
    if (supervised() && s.workload.recoverable() &&
        s.endState == SessionState::Active) {
      // Last-chance synchronous checkpoint: the successor resumes from
      // exactly this point. The pooled write (if any) settles first so
      // checkpointNow sees the current fingerprint.
      checkpointNow(s);
    }
    s.root->cancel("server draining");
    s.manager->stopAll();
    if (s.endState == SessionState::Active) {
      s.endState = SessionState::Drained;
      ++drained;
    }
    finalize(std::move(session));
  }
  for (PendingRestart& pending : pendingRestarts_) {
    // A parked restart's newest checkpoint is already its hand-off;
    // nothing to write, just record it as drained.
    ++drained;
    finalizePending(std::move(pending), SessionState::Drained, "",
                    ErrorClass::None);
  }
  pendingRestarts_.clear();
  return drained;
}

std::vector<uint64_t> SessionServer::recoverSessions(
    const std::function<SessionWorkload(const CheckpointMeta&)>& factory) {
  std::vector<uint64_t> recovered;
  if (!supervised() || draining_) return recovered;
  // A predecessor killed mid-write leaves `<ckpt>.tmp.<pid>` stage files;
  // sweep the dead writers' orphans before reading the directory.
  persist::sweepOrphanedTemps(config_.checkpointDir);
  std::vector<uint64_t> ids;
  for (const CheckpointRef& ref : listCheckpoints(config_.checkpointDir)) {
    if (ids.empty() || ids.back() != ref.sessionId) ids.push_back(ref.sessionId);
  }
  for (const uint64_t id : ids) {
    std::optional<LoadedCheckpoint> loaded =
        loadNewestCheckpoint(config_.checkpointDir, id);
    if (!loaded) continue;  // every generation corrupt: nothing to resume
    if (nextId_ <= id) nextId_ = id + 1;
    SessionWorkload workload;
    try {
      workload = factory(loaded->meta);
    } catch (const Error&) {
      continue;  // no factory for this label: leave its checkpoints alone
    }
    auto session = makeSession(id, std::move(workload));
    Session& s = *session;
    s.restarts = loaded->meta.restarts;
    s.recoveredFrames = loaded->meta.framesRun;
    s.checkpointSeq = loaded->meta.seq + 1;
    s.hasFingerprint = false;  // the hasher cache died with the writer
    {
      workers::StatsScope scope(s.stats);
      try {
        // The clock must be in place before resume(): scripts spawned by
        // the hook may consult the timer or frame counter.
        s.manager->restoreClockState(loaded->meta.clock);
        s.state = s.workload.resume(*s.manager, loaded->project);
      } catch (...) {
        contain(s, std::current_exception());
        finalize(std::move(session));
        continue;
      }
    }
    workers::registerStatsScope(s.stats);
    ++metrics_.admitted;
    ++metrics_.recovered;
    recovered.push_back(id);
    active_.push_back(std::move(session));
  }
  return recovered;
}

double SessionServer::fairnessSpread(const std::vector<uint64_t>& slices) {
  if (slices.empty()) return 0;
  uint64_t lo = slices.front();
  uint64_t hi = slices.front();
  for (uint64_t s : slices) {
    lo = s < lo ? s : lo;
    hi = s > hi ? s : hi;
  }
  if (lo == 0) return 0;
  return double(hi) / double(lo);
}

}  // namespace psnap::serve
