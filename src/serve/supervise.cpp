#include "serve/supervise.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <utility>

#include "project/snapshot.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace psnap::serve {

namespace {

namespace fs = std::filesystem;

/// The reserved global carrying CheckpointMeta through the snapshot
/// format. Stripped on load; a project global with this name would be
/// shadowed, which is why the name sits outside Snap!'s identifier
/// space.
constexpr const char* kMetaGlobal = "__supervise.meta";

constexpr const char* kPrefix = "session-";
constexpr const char* kSuffix = ".ckpt";

/// splitmix64 finalizer (the same mix the fault injector uses).
uint64_t mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t combine(uint64_t seed, uint64_t value) {
  return mix(seed ^ value);
}

uint64_t hashText(const std::string& text) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64
  for (const unsigned char c : text) {
    h = (h ^ c) * 0x100000001b3ull;
  }
  return h;
}

/// Parse `session-<id>.<seq>.ckpt`; false when the name is not ours.
bool parseCheckpointName(const std::string& name, uint64_t* sessionId,
                         uint64_t* seq) {
  const size_t prefixLen = std::char_traits<char>::length(kPrefix);
  const size_t suffixLen = std::char_traits<char>::length(kSuffix);
  if (name.size() <= prefixLen + suffixLen) return false;
  if (name.compare(0, prefixLen, kPrefix) != 0) return false;
  if (name.compare(name.size() - suffixLen, suffixLen, kSuffix) != 0)
    return false;
  const std::string body =
      name.substr(prefixLen, name.size() - prefixLen - suffixLen);
  const size_t dot = body.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= body.size())
    return false;
  const auto parse = [](const std::string& digits, uint64_t* out) {
    if (digits.empty()) return false;
    for (const char c : digits) {
      if (c < '0' || c > '9') return false;
    }
    errno = 0;
    *out = std::strtoull(digits.c_str(), nullptr, 10);
    return errno == 0;
  };
  return parse(body.substr(0, dot), sessionId) &&
         parse(body.substr(dot + 1), seq);
}

blocks::Value metaValue(const CheckpointMeta& meta) {
  return blocks::Value(blocks::List::make({
      blocks::Value(double(meta.sessionId)),
      blocks::Value(double(meta.seq)),
      blocks::Value(meta.label),
      blocks::Value(double(meta.framesRun)),
      blocks::Value(double(meta.restarts)),
      blocks::Value(double(meta.clock.frame)),
      blocks::Value(meta.clock.now),
      blocks::Value(meta.clock.timerStart),
  }));
}

CheckpointMeta parseMeta(const blocks::Value& value) {
  if (!value.isList() || value.asList()->length() != 8) {
    throw SubstrateError("checkpoint meta record malformed");
  }
  const auto& list = *value.asList();
  CheckpointMeta meta;
  meta.sessionId = uint64_t(list.item(1).asNumber());
  meta.seq = uint64_t(list.item(2).asNumber());
  meta.label = list.item(3).asText();
  meta.framesRun = uint64_t(list.item(4).asNumber());
  meta.restarts = uint32_t(list.item(5).asNumber());
  meta.clock.frame = uint64_t(list.item(6).asNumber());
  meta.clock.now = list.item(7).asNumber();
  meta.clock.timerStart = list.item(8).asNumber();
  return meta;
}

}  // namespace

uint64_t RestartPolicy::backoffFrames(uint32_t restarts) const {
  if (restarts == 0) return 0;
  const uint32_t shift = restarts - 1;
  // A shift past 63 (or any overflow of base << shift) saturates at the
  // cap — the cap is the point of the cap.
  if (shift >= 63 || backoffBaseFrames > (backoffCapFrames >> shift)) {
    return backoffCapFrames;
  }
  return std::min(backoffCapFrames, backoffBaseFrames << shift);
}

std::string checkpointPath(const std::string& dir, uint64_t sessionId,
                           uint64_t seq) {
  return (fs::path(dir) / (kPrefix + std::to_string(sessionId) + "." +
                           std::to_string(seq) + kSuffix))
      .string();
}

std::vector<CheckpointRef> listCheckpoints(const std::string& dir) {
  std::vector<CheckpointRef> refs;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return refs;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    CheckpointRef ref;
    if (!parseCheckpointName(entry.path().filename().string(),
                             &ref.sessionId, &ref.seq)) {
      continue;
    }
    ref.path = entry.path().string();
    refs.push_back(std::move(ref));
  }
  std::sort(refs.begin(), refs.end(),
            [](const CheckpointRef& a, const CheckpointRef& b) {
              if (a.sessionId != b.sessionId) return a.sessionId < b.sessionId;
              return a.seq > b.seq;  // newest first within a session
            });
  return refs;
}

std::vector<CheckpointRef> listCheckpoints(const std::string& dir,
                                           uint64_t sessionId) {
  std::vector<CheckpointRef> all = listCheckpoints(dir);
  std::vector<CheckpointRef> mine;
  for (auto& ref : all) {
    if (ref.sessionId == sessionId) mine.push_back(std::move(ref));
  }
  return mine;
}

void writeCheckpoint(const std::string& dir, const CheckpointMeta& meta,
                     const project::Project& project) {
  fault::inject(fault::Point::CheckpointWriteFailure, meta.sessionId);
  std::error_code ec;
  fs::create_directories(dir, ec);  // best effort; the save reports failure
  project::Project staged = project;
  staged.globals.emplace_back(kMetaGlobal, metaValue(meta));
  project::saveProjectSnapshot(checkpointPath(dir, meta.sessionId, meta.seq),
                               staged);
  // Prune generations past the keep horizon. Failures here are ignored:
  // an unpruned old generation costs disk, never correctness.
  const std::vector<CheckpointRef> refs = listCheckpoints(dir, meta.sessionId);
  for (size_t i = kKeepGenerations; i < refs.size(); ++i) {
    fs::remove(refs[i].path, ec);
  }
}

std::optional<LoadedCheckpoint> loadNewestCheckpoint(const std::string& dir,
                                                     uint64_t sessionId) {
  for (const CheckpointRef& ref : listCheckpoints(dir, sessionId)) {
    try {
      // The chaos hook: an injected corruption behaves exactly like a
      // torn file — this generation is skipped, the previous one loads.
      fault::inject(fault::Point::RecoveryCorruption, sessionId);
      LoadedCheckpoint loaded;
      loaded.project = project::loadProjectSnapshot(ref.path);
      bool metaFound = false;
      for (auto it = loaded.project.globals.begin();
           it != loaded.project.globals.end(); ++it) {
        if (it->first == kMetaGlobal) {
          loaded.meta = parseMeta(it->second);
          loaded.project.globals.erase(it);
          metaFound = true;
          break;
        }
      }
      if (!metaFound) {
        throw SubstrateError("checkpoint missing meta record: " + ref.path);
      }
      return loaded;
    } catch (const Error& e) {
      // Corrupt, injected-corrupt, or malformed: fall back a generation.
      if (std::getenv("PSNAP_SUPERVISE_DEBUG")) {
        std::fprintf(stderr, "[supervise] load %s failed: %s\n",
                     ref.path.c_str(), e.what());
      }
    }
  }
  return std::nullopt;
}

size_t removeCheckpoints(const std::string& dir, uint64_t sessionId) {
  size_t removed = 0;
  std::error_code ec;
  for (const CheckpointRef& ref : listCheckpoints(dir, sessionId)) {
    if (fs::remove(ref.path, ec) && !ec) ++removed;
  }
  return removed;
}

uint64_t CheckpointHasher::fingerprint(const project::Project& project) {
  uint64_t h = hashText(project.name);
  for (const auto& [name, value] : project.globals) {
    h = combine(h, hashText(name));
    h = combine(h, hashValue(value));
  }
  for (const auto& sprite : project.sprites) {
    h = combine(h, hashText(sprite.name));
    h = combine(h, std::bit_cast<uint64_t>(sprite.x));
    h = combine(h, std::bit_cast<uint64_t>(sprite.y));
    h = combine(h, std::bit_cast<uint64_t>(sprite.heading));
    h = combine(h, hashText(sprite.costume));
    for (const auto& [name, value] : sprite.variables) {
      h = combine(h, hashText(name));
      h = combine(h, hashValue(value));
    }
    // Scripts are structurally immutable once built; identity suffices
    // within the one process this hasher lives in.
    for (const auto& script : sprite.scripts) {
      h = combine(h, uint64_t(reinterpret_cast<uintptr_t>(script.get())));
    }
  }
  h = combine(h, uint64_t(project.customBlocks.size()));
  return h;
}

uint64_t CheckpointHasher::hashValue(const blocks::Value& value) {
  using blocks::ValueKind;
  switch (value.kind()) {
    case ValueKind::Nothing:
      return 0x6e6f7468696e6721ull;
    case ValueKind::Number:
      return combine(1, std::bit_cast<uint64_t>(value.asNumber()));
    case ValueKind::Boolean:
      return combine(2, value.asBoolean() ? 1 : 0);
    case ValueKind::Text:
      return combine(3, hashText(value.asText()));
    case ValueKind::ListRef:
      return hashList(value.asList());
    default:
      // Rings/futures are not persistable (capture rejects them before
      // the hasher runs); identity keeps the fingerprint total anyway.
      return combine(4, uint64_t(reinterpret_cast<uintptr_t>(
                            value.isRing() ? (void*)value.asRing().get()
                                           : nullptr)));
  }
}

uint64_t CheckpointHasher::hashList(const blocks::ListPtr& list) {
  // The COW shortcut: an address+version hit means no mutation touched
  // this list since it was last hashed (every mutation bumps version via
  // the detach gate), so the cached hash is current — O(1) for any
  // unchanged list. The pinned ListPtr prevents the address from being
  // freed and recycled for a different list at the same address (ABA).
  const uint64_t version = list->version();
  auto it = lists_.find(list.get());
  if (it != lists_.end() && it->second.pin == list &&
      it->second.version == version) {
    return it->second.hash;
  }
  uint64_t h = combine(5, uint64_t(list->length()));
  for (size_t i = 1; i <= list->length(); ++i) {
    h = combine(h, hashValue(list->item(i)));
  }
  lists_[list.get()] = ListEntry{list, version, h};
  return h;
}

}  // namespace psnap::serve
