// Supervision primitives for the session server: durable checkpoints,
// restart budgets, and recovery (DESIGN.md "Supervision").
//
// The model is Parsl's retry-from-checkpoint for deferred apps: a failed
// session is not a lost session but a *replay* from its newest
// known-good state. Three pieces live here, all policy-free mechanics
// the server composes:
//
//   * the checkpoint format — one `project::saveProjectSnapshot` file
//     per (session, sequence), named `session-<id>.<seq>.ckpt`, with a
//     CheckpointMeta record embedded as a reserved project global so the
//     snapshot format itself stays unchanged. Writes inherit the persist
//     writer's temp-and-rename atomicity: a crash mid-write leaves the
//     previous generation intact and a stage file the orphan sweep
//     (persist::sweepOrphanedTemps) clears on the next open.
//   * generation management — the newest `kKeepGenerations` checkpoints
//     are kept per session; the loader walks newest-to-oldest past
//     corrupt generations (and the RecoveryCorruption fault point), so
//     one torn file degrades recovery freshness, never recovery itself.
//   * change detection — CheckpointHasher folds the value plane's COW
//     version stamps into a content fingerprint: a list whose version is
//     unchanged since the last checkpoint re-uses its cached hash
//     without rescanning (O(1) per unchanged list, however large), so
//     an idle session's periodic checkpoint degenerates to a hash
//     compare and a skip.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "blocks/value.hpp"
#include "project/project.hpp"
#include "sched/thread_manager.hpp"

namespace psnap::serve {

/// Erlang-style max-R-in-T restart budget, measured on the server's
/// frame clock (deterministic — no wall time).
struct RestartPolicy {
  /// Restarts allowed within the window (0 = supervision never restarts;
  /// failures stay Failed as before).
  uint32_t maxRestarts = 0;
  /// First restart waits backoffBaseFrames server frames; each further
  /// restart doubles the wait, capped at backoffCapFrames.
  uint64_t backoffBaseFrames = 2;
  uint64_t backoffCapFrames = 64;
  /// Restart budget window in server frames. After a window with no
  /// restart the count resets. 0 = lifetime budget (never resets).
  uint64_t budgetWindowFrames = 0;

  /// The backoff delay before restart attempt `restarts` (1-based).
  uint64_t backoffFrames(uint32_t restarts) const;
};

/// Everything the supervisor must remember alongside the project state
/// to resume a session elsewhere: identity, progress accounting, and the
/// scheduler's virtual clock.
struct CheckpointMeta {
  uint64_t sessionId = 0;
  uint64_t seq = 0;           ///< checkpoint generation, monotone per session
  std::string label;          ///< workload label (recovery factory key)
  uint64_t framesRun = 0;     ///< session frames executed at capture
  uint32_t restarts = 0;      ///< restarts consumed at capture
  sched::ThreadManager::ClockState clock;
};

/// Checkpoint generations kept per session (newest first); older ones
/// are pruned after each successful write.
inline constexpr uint64_t kKeepGenerations = 2;

/// `<dir>/session-<id>.<seq>.ckpt`
std::string checkpointPath(const std::string& dir, uint64_t sessionId,
                           uint64_t seq);

/// One checkpoint file found on disk.
struct CheckpointRef {
  uint64_t sessionId = 0;
  uint64_t seq = 0;
  std::string path;
};

/// All checkpoint files under `dir`, grouped by nothing: every session,
/// newest seq first within a session. A missing directory lists empty.
std::vector<CheckpointRef> listCheckpoints(const std::string& dir);

/// One session's checkpoints, newest seq first.
std::vector<CheckpointRef> listCheckpoints(const std::string& dir,
                                           uint64_t sessionId);

/// Write one checkpoint generation: meta is embedded as a reserved
/// global, the file is staged and renamed atomically, and older
/// generations beyond kKeepGenerations are pruned. Throws as
/// saveProjectSnapshot does; the CheckpointWriteFailure fault point
/// fires here (tagged with the session id) before any file is staged.
void writeCheckpoint(const std::string& dir, const CheckpointMeta& meta,
                     const project::Project& project);

struct LoadedCheckpoint {
  CheckpointMeta meta;
  project::Project project;
};

/// Load the newest generation that reads back valid, walking past
/// corrupt files (and RecoveryCorruption injections, tagged with the
/// session id) to older generations. Empty when the session has no
/// loadable checkpoint at all — the supervisor then restarts from
/// scratch.
std::optional<LoadedCheckpoint> loadNewestCheckpoint(const std::string& dir,
                                                     uint64_t sessionId);

/// Delete every checkpoint of `sessionId` (a completed session needs no
/// recovery state). Returns files removed.
size_t removeCheckpoints(const std::string& dir, uint64_t sessionId);

/// Content fingerprint over a project's mutable state, COW-accelerated:
/// lists are cached by (address, version) — the pinned ListPtr keeps the
/// address from being recycled — so unchanged lists cost one version
/// compare instead of a rescan. One hasher instance belongs to one
/// session's checkpoint loop; equal successive fingerprints mean the
/// checkpoint write can be skipped.
class CheckpointHasher {
 public:
  uint64_t fingerprint(const project::Project& project);

 private:
  uint64_t hashValue(const blocks::Value& value);
  uint64_t hashList(const blocks::ListPtr& list);

  struct ListEntry {
    blocks::ListPtr pin;  ///< prevents address reuse while cached
    uint64_t version = 0;
    uint64_t hash = 0;
  };
  std::unordered_map<const blocks::List*, ListEntry> lists_;
};

}  // namespace psnap::serve
