// The serving layer: many independent project sessions over one substrate.
//
// The paper's scheduler runs exactly one project; this server hosts N of
// them — each session owns its own sched::ThreadManager and project state,
// all multiplexed over the process-wide WorkerPool (the Parsl model of
// many apps sharing one executor). Robustness is the design center: one
// misbehaving or fault-injected tenant must never take down, starve, or
// corrupt another. Four mechanisms enforce that:
//
//   * Admission control — the session table is bounded by a high-water
//     mark. An admission past it is rejected with a typed SubstrateError
//     (never queued unboundedly), and a pool-saturation signal observed
//     at launch time sheds the *newest*-admitted tenant over the oldest
//     (LIFO shedding: the newest session has the least sunk work).
//   * Per-tenant isolation — every session gets a root CancelToken
//     (deadline-capable) parented above all of its processes, a scoped
//     SubstrateStats ledger rolling up into the process ledger, and a
//     frame-budget watchdog that trips only the offending tenant's root
//     with a TimeoutError naming its session id.
//   * Fair time-slicing — runFrame() grants every session with ready
//     work exactly one scheduler frame, round-robin from a rotating
//     start, with per-tenant slice accounting. A hot tenant cannot
//     monopolize the frame loop; its interpreter work is bounded by the
//     slice like everyone else's. A tenant whose processes are all
//     parked on in-flight completions is *skipped and not charged*: its
//     framesRun ledger (the fairness unit and the watchdog's budget
//     meter) only counts frames in which it could actually run. All
//     sessions share one WakeHub, so when every tenant is parked,
//     runUntilQuiet() sleeps on the hub instead of spinning server
//     frames, and the first completion from any tenant rouses the loop.
//   * Crash containment — an exception escaping one session's launch or
//     frame slice marks that session Failed and recycles its slot; the
//     server keeps serving the rest.
//
// On top of containment sits *supervision* (DESIGN.md "Supervision"),
// enabled by setting ServerConfig::checkpointDir:
//
//   * Incremental checkpointing — every checkpointIntervalFrames session
//     frames, a recoverable workload's project state is captured on the
//     server thread (O(1) COW clones) and serialized + written on a pool
//     worker through the atomic temp-and-rename snapshot writer — the
//     frame loop never blocks on disk. A content fingerprint built from
//     the value plane's COW version stamps skips the write entirely when
//     nothing changed since the last checkpoint.
//   * Restart policy — a session that fails with a substrate-class error
//     (including watchdog timeouts) is re-admitted from its newest valid
//     checkpoint after an exponential backoff, under an Erlang-style
//     max-R-in-T budget; once the budget is spent the session is
//     finalized with a typed RestartsExhaustedError. User-script errors
//     (type errors, index errors) never restart: replaying a
//     deterministic bug reproduces it.
//   * Drain and cold restart — drain() closes admission, synchronously
//     checkpoints every active recoverable session, and quiesces; a new
//     server constructed over the same checkpoint directory resumes all
//     of them via recoverSessions(), walking past corrupt generations.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "project/project.hpp"
#include "sched/thread_manager.hpp"
#include "serve/supervise.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "vm/host.hpp"
#include "workers/stats.hpp"
#include "workers/task_group.hpp"

namespace psnap::serve {

/// Where a session ended up (Active only while it still holds a slot).
/// Drained sessions were checkpointed and quiesced by drain(); their
/// checkpoints stay on disk for a successor server to recover.
enum class SessionState : uint8_t { Active, Completed, Failed, Shed, Drained };
const char* sessionStateName(SessionState state);

struct ServerConfig {
  /// Admission high-water mark: admissions past this many live sessions
  /// are rejected with a typed SubstrateError.
  size_t maxSessions = 256;
  /// Frames a session may consume before the watchdog trips its root
  /// token with TimeoutError (0 = no budget).
  uint64_t frameBudget = 0;
  /// Wall-clock deadline per session from admission (0 = none).
  double sessionDeadlineSeconds = 0;
  /// Interpreter steps per process per frame (ThreadManager slice).
  size_t sliceSteps = vm::Process::kDefaultSliceSteps;
  /// Logical worker width each session's parallel blocks request.
  size_t maxWorkers = 4;
  /// Let this server's sessions use the native execution tier (per-tenant
  /// opt-out; PSNAP_NATIVE_TIER=0 disables it process-wide regardless).
  bool nativeTier = true;
  /// Supervision switch: non-empty enables periodic checkpointing of
  /// recoverable sessions into this directory (created on demand),
  /// restart-from-checkpoint under `restartPolicy`, drain(), and
  /// recoverSessions(). Empty keeps the pre-supervision behaviour and
  /// costs nothing on the frame path.
  std::string checkpointDir;
  /// Session frames between checkpoint attempts of one session.
  uint64_t checkpointIntervalFrames = 32;
  /// Restart budget for failed/timed-out supervised sessions.
  RestartPolicy restartPolicy;
};

/// One tenant's workload. `start` builds the project into the session's
/// manager (spawning its processes) and may return opaque state the
/// session keeps alive until it is recycled (e.g. a stage::Stage).
/// `check`, when set, validates the output once the session completes.
///
/// A workload is *recoverable* when both `capture` and `resume` are set:
/// `capture` distills the session's live state into a Project (values
/// should be structuredClone'd — O(1) for flat COW lists — so the
/// snapshot is immune to later mutation), and `resume` rebuilds the
/// session from a recovered Project, re-spawning whatever scripts are
/// needed to finish the remaining work. `output`, when set, renders the
/// session's canonical final output as text — the byte-identical unit
/// the crash-kill chaos test compares.
struct SessionWorkload {
  std::string label;
  std::function<std::shared_ptr<void>(sched::ThreadManager&)> start;
  std::function<bool(sched::ThreadManager&, const std::shared_ptr<void>&)>
      check;
  std::function<project::Project(sched::ThreadManager&,
                                 const std::shared_ptr<void>&)>
      capture;
  std::function<std::shared_ptr<void>(sched::ThreadManager&,
                                      const project::Project&)>
      resume;
  std::function<std::string(sched::ThreadManager&,
                            const std::shared_ptr<void>&)>
      output;

  bool recoverable() const { return bool(capture) && bool(resume); }
};

/// Snapshot of one session, live or finished.
struct SessionRecord {
  uint64_t id = 0;
  std::string label;
  SessionState state = SessionState::Active;
  /// First error (Failed sessions) or the shed/cancel reason (Shed).
  std::string error;
  ErrorClass errorClass = ErrorClass::None;
  /// check()'s verdict (true when no check was given or not yet run).
  bool outputOk = true;
  /// Scheduler frames granted to this session (the fairness unit).
  uint64_t framesRun = 0;
  uint64_t admittedAtFrame = 0;
  uint64_t finishedAtFrame = 0;
  /// Per-tenant substrate ledger at snapshot time (cumulative across
  /// supervised restarts).
  uint64_t retries = 0;
  uint64_t downgrades = 0;
  uint64_t cancellations = 0;
  uint64_t timeouts = 0;
  uint64_t tasksSkipped = 0;
  /// Supervision accounting.
  uint64_t checkpointsWritten = 0;
  uint64_t checkpointsSkipped = 0;  ///< fingerprint-unchanged skips
  uint32_t restarts = 0;            ///< restart attempts consumed
  /// Frames of progress inherited from checkpoints (restart + recovery).
  uint64_t recoveredFrames = 0;
  /// The workload's `output` hook rendering, filled when the session
  /// completes (empty otherwise or when no hook was given).
  std::string output;
};

struct ServerMetrics {
  uint64_t admitted = 0;       ///< sessions that got a slot
  uint64_t rejected = 0;       ///< typed admission rejections
  uint64_t completed = 0;
  uint64_t failed = 0;         ///< crashed, errored, or watchdog-tripped
  uint64_t shed = 0;           ///< overload sheds + explicit cancels
  uint64_t overloadSheds = 0;  ///< sheds triggered by pool saturation
  uint64_t framesRun = 0;      ///< server frames executed
  /// Supervision accounting.
  uint64_t drained = 0;            ///< sessions quiesced by drain()
  uint64_t recovered = 0;          ///< sessions resumed by recoverSessions()
  uint64_t restarts = 0;           ///< successful restart re-admissions
  uint64_t restartsExhausted = 0;  ///< sessions that spent their budget
  uint64_t checkpointsWritten = 0;
  uint64_t checkpointsSkipped = 0;
  uint64_t checkpointFailures = 0;  ///< write/capture attempts that failed
};

class SessionServer {
 public:
  explicit SessionServer(ServerConfig config = {});
  ~SessionServer();

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  const ServerConfig& config() const { return config_; }

  /// Admit a tenant and launch its workload. Returns the session id.
  /// Throws SubstrateError — typed, never queued — when the table is at
  /// its high-water mark or the SessionAdmitFailure fault point fires.
  /// A PoolSaturation signal observed here first sheds the newest-
  /// admitted active session (LIFO) to relieve the pool. A workload
  /// whose start() throws is contained: the session is marked Failed,
  /// its slot recycled, and the id still returned.
  uint64_t admit(SessionWorkload workload);

  /// One server frame: every active session with ready work receives one
  /// scheduler frame (round-robin from a rotating start). A session whose
  /// processes are all parked is polled for completions/deadline trips
  /// but charged nothing — parked tenants consume zero framesRun.
  /// Sessions whose manager went idle are finalized and their slots
  /// recycled.
  void runFrame();

  /// Run server frames until no session is active; returns frames run.
  /// When every active tenant is parked, sleeps on the shared wake hub
  /// (bounded by the nearest parked deadline) instead of spinning.
  /// Throws TimeoutError past `maxFrames` frames-plus-wait-rounds,
  /// naming the sessions still active (the per-tenant watchdog should
  /// fire long before this).
  uint64_t runUntilQuiet(uint64_t maxFrames = 10'000'000);

  /// Cancel one live session (counts as shed). Unknown/finished ids are
  /// a no-op.
  void cancelSession(uint64_t id, const std::string& reason);

  /// Graceful shutdown half of supervision: close admission (further
  /// admits throw a typed SubstrateError), settle every in-flight
  /// checkpoint write, synchronously checkpoint each active recoverable
  /// session one last time, then cancel and finalize everything as
  /// Drained — checkpoints stay on disk. Pending restarts are drained
  /// too (their checkpoints are already current). Returns the number of
  /// sessions drained. Requires checkpointDir; without it this is
  /// equivalent to cancelling every session.
  size_t drain();

  /// Cold-start half: resume every session checkpointed under this
  /// server's checkpointDir. `factory` maps a recovered CheckpointMeta
  /// (label, progress) back to a workload — the workload's `resume` hook
  /// is called with the recovered project. Corrupt newest generations
  /// fall back to older ones; sessions with no loadable checkpoint are
  /// skipped. Recovered sessions keep their original ids (nextId_ moves
  /// past them). Returns the recovered session ids. Sweeps orphaned
  /// writer temp files from the checkpoint directory first.
  std::vector<uint64_t> recoverSessions(
      const std::function<SessionWorkload(const CheckpointMeta&)>& factory);

  /// True once drain() has run: admission is closed for good.
  bool draining() const { return draining_; }

  /// Publish the dataset snapshot at `path` under `name`: the file is
  /// mapped once (through the process-wide shared-open catalog) and that
  /// one mapping backs every tenant that opens it. Re-publishing a name
  /// replaces it. Throws SubstrateError for missing/corrupt files (and
  /// when the MmapFailure fault point fires).
  void publishDataset(const std::string& name, const std::string& path);

  /// A tenant-private view of a published dataset: a fresh List sharing
  /// the mapped buffer (O(1)), so readers never share a mutable node and
  /// one tenant's mutation — which copies out, COW — is invisible to the
  /// rest. Throws SubstrateError for unknown names.
  blocks::ListPtr openDataset(const std::string& name) const;

  /// Drop a published name (no-op when absent; tenants holding views
  /// keep the mapping alive). Returns true when something was dropped.
  bool unpublishDataset(const std::string& name);

  size_t publishedDatasets() const { return datasets_.size(); }

  size_t activeSessions() const { return active_.size(); }
  /// Sessions parked for a restart backoff (due at a future frame).
  size_t pendingRestarts() const { return pendingRestarts_.size(); }
  bool quiet() const { return active_.empty() && pendingRestarts_.empty(); }
  const ServerMetrics& metrics() const { return metrics_; }
  uint64_t frameCount() const { return frame_; }

  /// Snapshots of every session this server has seen: finished first (in
  /// finish order), then the still-active ones (in admission order).
  std::vector<SessionRecord> records() const;

  /// Wall-clock seconds of each server frame, in order — the latency
  /// trajectory the serve bench reduces to p50/p99.
  const std::vector<double>& frameSeconds() const { return frameSeconds_; }

  /// Fairness spread over a set of per-tenant slice counts: max/min
  /// (1.0 = perfectly fair; 0 entries or a zero minimum yield 0).
  static double fairnessSpread(const std::vector<uint64_t>& slices);

 private:
  /// Substrate-counter totals carried across a restart (the new life's
  /// SubstrateStats starts at zero; snapshot() adds these back in).
  struct StatsBaseline {
    uint64_t retries = 0;
    uint64_t downgrades = 0;
    uint64_t cancellations = 0;
    uint64_t timeouts = 0;
    uint64_t tasksSkipped = 0;
  };

  /// One in-flight pooled checkpoint write. The task records its outcome
  /// here before the group settles; the server observes it (and never
  /// blocks on it) on a later visit — except drain/finalize, which wait.
  struct PendingWrite {
    std::shared_ptr<workers::TaskGroup> group;
    std::atomic<bool> ok{false};
    uint64_t fingerprint = 0;
    uint64_t seq = 0;
  };

  struct Session {
    uint64_t id = 0;
    SessionWorkload workload;
    // Destruction order matters: `state` (e.g. a stage whose hooks point
    // into the manager) must die before `manager`, so it is declared
    // after it.
    std::unique_ptr<sched::ThreadManager> manager;
    std::shared_ptr<void> state;
    CancelTokenPtr root;
    workers::SubstrateStats stats;
    SessionState endState = SessionState::Active;  // set at finalize
    std::string error;
    ErrorClass errorClass = ErrorClass::None;
    bool outputOk = true;
    bool watchdogFired = false;
    uint64_t framesRun = 0;
    uint64_t admittedAtFrame = 0;
    std::string output;  ///< `output` hook rendering, filled on completion

    // --- supervision state ---
    CheckpointHasher hasher;
    bool hasFingerprint = false;    ///< lastFingerprint is valid
    uint64_t lastFingerprint = 0;   ///< of the newest *written* checkpoint
    uint64_t checkpointSeq = 0;     ///< next generation to write
    uint64_t lastCheckpointFrame = 0;  ///< framesRun at last attempt
    std::shared_ptr<PendingWrite> pendingWrite;
    uint64_t checkpointsWritten = 0;
    uint64_t checkpointsSkipped = 0;
    uint32_t restarts = 0;          ///< attempts consumed (lifetime)
    uint32_t restartsInWindow = 0;
    uint64_t windowStart = 0;       ///< server frame the window opened
    uint64_t recoveredFrames = 0;
    StatsBaseline baseline;
  };

  /// A failed session parked for its restart backoff. Carries everything
  /// the revived session must inherit; the old manager/stats are gone.
  struct PendingRestart {
    uint64_t id = 0;
    SessionWorkload workload;
    uint64_t dueFrame = 0;
    uint32_t restarts = 0;
    uint32_t restartsInWindow = 0;
    uint64_t windowStart = 0;
    uint64_t admittedAtFrame = 0;
    uint64_t framesRun = 0;         ///< progress at failure (reporting)
    uint64_t recoveredFrames = 0;
    uint64_t checkpointSeq = 0;
    uint64_t checkpointsWritten = 0;
    uint64_t checkpointsSkipped = 0;
    StatsBaseline baseline;
  };

  SessionRecord snapshot(const Session& session, uint64_t finishedAt) const;
  /// Mark `session` failed with `error`'s type and message (containment).
  void contain(Session& session, const std::exception_ptr& error);
  /// Trip the watchdog if the session is over its frame budget.
  void watchdog(Session& session);
  /// Cancel and finalize the newest-admitted active session.
  void shedNewestActive(const std::string& reason);
  /// Cancel and finalize active_[index] as Shed.
  void shedAt(size_t index, const std::string& reason);
  /// Decide a still-Active session's outcome from its manager's drained
  /// error log; on completion run the check and output hooks. Idempotent
  /// once the state leaves Active.
  void resolveOutcome(Session& session);
  /// Build an empty session shell (manager, root token, hub, stats
  /// parenting) — shared by admit, restart revival, and recovery.
  std::unique_ptr<Session> makeSession(uint64_t id, SessionWorkload workload);
  /// Move a no-longer-active session into the finished records.
  void finalize(std::unique_ptr<Session> session);
  /// Give one session one scheduler frame under its scope (contained).
  /// Wakes its parked processes first; if nothing is ready the frame is
  /// skipped and the tenant's framesRun is not charged.
  void runSessionFrame(Session& session);
  /// Any active session with a Ready process?
  bool anySessionReady() const;
  /// Nearest parked deadline across all active sessions (hub wait bound);
  /// tightened while restarts are pending so backoff frames tick.
  double parkedWaitBound() const;

  // --- supervision ---
  bool supervised() const { return !config_.checkpointDir.empty(); }
  /// Checkpoint cadence: called after a session's slice; captures,
  /// fingerprints, and submits a pooled write when due.
  void maybeCheckpoint(Session& session);
  /// Collect the result of a settled pooled write (non-blocking unless
  /// `wait`); updates counters and the skip fingerprint.
  void observeCheckpointWrite(Session& session, bool wait);
  /// Capture + write synchronously (drain path). Returns false when the
  /// session could not be checkpointed (capture or write failed).
  bool checkpointNow(Session& session);
  /// Total progress (recovered + this life) for checkpoint meta.
  static uint64_t totalFrames(const Session& session) {
    return session.recoveredFrames + session.framesRun;
  }
  /// Accumulate the session's stats into its baseline (restart park).
  static void rollBaseline(Session& session);
  /// Failed session: park it for restart, or finalize RestartsExhausted /
  /// plain Failed when ineligible. Consumes the session either way.
  void finishOrRestart(std::unique_ptr<Session> session);
  /// Charge one restart against the entry's max-R-in-T budget and set
  /// its backoff due-frame; returns false when the window budget is
  /// spent (the caller finalizes as RestartsExhausted).
  bool consumeRestartBudget(PendingRestart& pending);
  /// Re-admit every pending restart whose backoff elapsed.
  void reviveDue();
  /// Finalize a pending restart as a finished record (exhausted/drained).
  void finalizePending(PendingRestart pending, SessionState state,
                       const std::string& error, ErrorClass errorClass);

  ServerConfig config_;
  const blocks::BlockRegistry* registry_;
  vm::PrimitiveTable primitives_;
  /// One hub for all tenants: any session's completion callback can
  /// rouse a server sleeping in runUntilQuiet().
  vm::WakeHubPtr hub_;

  /// Published datasets: pristine mapped roots, never handed out
  /// directly (openDataset clones).
  std::unordered_map<std::string, blocks::ListPtr> datasets_;

  std::vector<std::unique_ptr<Session>> active_;  // admission order
  std::vector<PendingRestart> pendingRestarts_;   // backoff parking lot
  std::vector<SessionRecord> finished_;           // finish order
  ServerMetrics metrics_;
  std::vector<double> frameSeconds_;
  uint64_t nextId_ = 1;
  uint64_t frame_ = 0;
  size_t rotate_ = 0;  // round-robin start cursor
  bool draining_ = false;
};

}  // namespace psnap::serve
