// The serving layer: many independent project sessions over one substrate.
//
// The paper's scheduler runs exactly one project; this server hosts N of
// them — each session owns its own sched::ThreadManager and project state,
// all multiplexed over the process-wide WorkerPool (the Parsl model of
// many apps sharing one executor). Robustness is the design center: one
// misbehaving or fault-injected tenant must never take down, starve, or
// corrupt another. Four mechanisms enforce that:
//
//   * Admission control — the session table is bounded by a high-water
//     mark. An admission past it is rejected with a typed SubstrateError
//     (never queued unboundedly), and a pool-saturation signal observed
//     at launch time sheds the *newest*-admitted tenant over the oldest
//     (LIFO shedding: the newest session has the least sunk work).
//   * Per-tenant isolation — every session gets a root CancelToken
//     (deadline-capable) parented above all of its processes, a scoped
//     SubstrateStats ledger rolling up into the process ledger, and a
//     frame-budget watchdog that trips only the offending tenant's root
//     with a TimeoutError naming its session id.
//   * Fair time-slicing — runFrame() grants every session with ready
//     work exactly one scheduler frame, round-robin from a rotating
//     start, with per-tenant slice accounting. A hot tenant cannot
//     monopolize the frame loop; its interpreter work is bounded by the
//     slice like everyone else's. A tenant whose processes are all
//     parked on in-flight completions is *skipped and not charged*: its
//     framesRun ledger (the fairness unit and the watchdog's budget
//     meter) only counts frames in which it could actually run. All
//     sessions share one WakeHub, so when every tenant is parked,
//     runUntilQuiet() sleeps on the hub instead of spinning server
//     frames, and the first completion from any tenant rouses the loop.
//   * Crash containment — an exception escaping one session's launch or
//     frame slice marks that session Failed and recycles its slot; the
//     server keeps serving the rest.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/thread_manager.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "vm/host.hpp"
#include "workers/stats.hpp"

namespace psnap::serve {

/// Where a session ended up (Active only while it still holds a slot).
enum class SessionState : uint8_t { Active, Completed, Failed, Shed };
const char* sessionStateName(SessionState state);

struct ServerConfig {
  /// Admission high-water mark: admissions past this many live sessions
  /// are rejected with a typed SubstrateError.
  size_t maxSessions = 256;
  /// Frames a session may consume before the watchdog trips its root
  /// token with TimeoutError (0 = no budget).
  uint64_t frameBudget = 0;
  /// Wall-clock deadline per session from admission (0 = none).
  double sessionDeadlineSeconds = 0;
  /// Interpreter steps per process per frame (ThreadManager slice).
  size_t sliceSteps = vm::Process::kDefaultSliceSteps;
  /// Logical worker width each session's parallel blocks request.
  size_t maxWorkers = 4;
  /// Let this server's sessions use the native execution tier (per-tenant
  /// opt-out; PSNAP_NATIVE_TIER=0 disables it process-wide regardless).
  bool nativeTier = true;
};

/// One tenant's workload. `start` builds the project into the session's
/// manager (spawning its processes) and may return opaque state the
/// session keeps alive until it is recycled (e.g. a stage::Stage).
/// `check`, when set, validates the output once the session completes.
struct SessionWorkload {
  std::string label;
  std::function<std::shared_ptr<void>(sched::ThreadManager&)> start;
  std::function<bool(sched::ThreadManager&, const std::shared_ptr<void>&)>
      check;
};

/// Snapshot of one session, live or finished.
struct SessionRecord {
  uint64_t id = 0;
  std::string label;
  SessionState state = SessionState::Active;
  /// First error (Failed sessions) or the shed/cancel reason (Shed).
  std::string error;
  ErrorClass errorClass = ErrorClass::None;
  /// check()'s verdict (true when no check was given or not yet run).
  bool outputOk = true;
  /// Scheduler frames granted to this session (the fairness unit).
  uint64_t framesRun = 0;
  uint64_t admittedAtFrame = 0;
  uint64_t finishedAtFrame = 0;
  /// Per-tenant substrate ledger at snapshot time.
  uint64_t retries = 0;
  uint64_t downgrades = 0;
  uint64_t cancellations = 0;
  uint64_t timeouts = 0;
  uint64_t tasksSkipped = 0;
};

struct ServerMetrics {
  uint64_t admitted = 0;       ///< sessions that got a slot
  uint64_t rejected = 0;       ///< typed admission rejections
  uint64_t completed = 0;
  uint64_t failed = 0;         ///< crashed, errored, or watchdog-tripped
  uint64_t shed = 0;           ///< overload sheds + explicit cancels
  uint64_t overloadSheds = 0;  ///< sheds triggered by pool saturation
  uint64_t framesRun = 0;      ///< server frames executed
};

class SessionServer {
 public:
  explicit SessionServer(ServerConfig config = {});
  ~SessionServer();

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  const ServerConfig& config() const { return config_; }

  /// Admit a tenant and launch its workload. Returns the session id.
  /// Throws SubstrateError — typed, never queued — when the table is at
  /// its high-water mark or the SessionAdmitFailure fault point fires.
  /// A PoolSaturation signal observed here first sheds the newest-
  /// admitted active session (LIFO) to relieve the pool. A workload
  /// whose start() throws is contained: the session is marked Failed,
  /// its slot recycled, and the id still returned.
  uint64_t admit(SessionWorkload workload);

  /// One server frame: every active session with ready work receives one
  /// scheduler frame (round-robin from a rotating start). A session whose
  /// processes are all parked is polled for completions/deadline trips
  /// but charged nothing — parked tenants consume zero framesRun.
  /// Sessions whose manager went idle are finalized and their slots
  /// recycled.
  void runFrame();

  /// Run server frames until no session is active; returns frames run.
  /// When every active tenant is parked, sleeps on the shared wake hub
  /// (bounded by the nearest parked deadline) instead of spinning.
  /// Throws TimeoutError past `maxFrames` frames-plus-wait-rounds,
  /// naming the sessions still active (the per-tenant watchdog should
  /// fire long before this).
  uint64_t runUntilQuiet(uint64_t maxFrames = 10'000'000);

  /// Cancel one live session (counts as shed). Unknown/finished ids are
  /// a no-op.
  void cancelSession(uint64_t id, const std::string& reason);

  /// Publish the dataset snapshot at `path` under `name`: the file is
  /// mapped once (through the process-wide shared-open catalog) and that
  /// one mapping backs every tenant that opens it. Re-publishing a name
  /// replaces it. Throws SubstrateError for missing/corrupt files (and
  /// when the MmapFailure fault point fires).
  void publishDataset(const std::string& name, const std::string& path);

  /// A tenant-private view of a published dataset: a fresh List sharing
  /// the mapped buffer (O(1)), so readers never share a mutable node and
  /// one tenant's mutation — which copies out, COW — is invisible to the
  /// rest. Throws SubstrateError for unknown names.
  blocks::ListPtr openDataset(const std::string& name) const;

  /// Drop a published name (no-op when absent; tenants holding views
  /// keep the mapping alive). Returns true when something was dropped.
  bool unpublishDataset(const std::string& name);

  size_t publishedDatasets() const { return datasets_.size(); }

  size_t activeSessions() const { return active_.size(); }
  bool quiet() const { return active_.empty(); }
  const ServerMetrics& metrics() const { return metrics_; }
  uint64_t frameCount() const { return frame_; }

  /// Snapshots of every session this server has seen: finished first (in
  /// finish order), then the still-active ones (in admission order).
  std::vector<SessionRecord> records() const;

  /// Wall-clock seconds of each server frame, in order — the latency
  /// trajectory the serve bench reduces to p50/p99.
  const std::vector<double>& frameSeconds() const { return frameSeconds_; }

  /// Fairness spread over a set of per-tenant slice counts: max/min
  /// (1.0 = perfectly fair; 0 entries or a zero minimum yield 0).
  static double fairnessSpread(const std::vector<uint64_t>& slices);

 private:
  struct Session {
    uint64_t id = 0;
    SessionWorkload workload;
    // Destruction order matters: `state` (e.g. a stage whose hooks point
    // into the manager) must die before `manager`, so it is declared
    // after it.
    std::unique_ptr<sched::ThreadManager> manager;
    std::shared_ptr<void> state;
    CancelTokenPtr root;
    workers::SubstrateStats stats;
    SessionState endState = SessionState::Active;  // set at finalize
    std::string error;
    ErrorClass errorClass = ErrorClass::None;
    bool outputOk = true;
    bool watchdogFired = false;
    uint64_t framesRun = 0;
    uint64_t admittedAtFrame = 0;
  };

  SessionRecord snapshot(const Session& session, uint64_t finishedAt) const;
  /// Mark `session` failed with `error`'s type and message (containment).
  void contain(Session& session, const std::exception_ptr& error);
  /// Trip the watchdog if the session is over its frame budget.
  void watchdog(Session& session);
  /// Cancel and finalize the newest-admitted active session.
  void shedNewestActive(const std::string& reason);
  /// Cancel and finalize active_[index] as Shed.
  void shedAt(size_t index, const std::string& reason);
  /// Move a no-longer-active session into the finished records.
  void finalize(std::unique_ptr<Session> session);
  /// Give one session one scheduler frame under its scope (contained).
  /// Wakes its parked processes first; if nothing is ready the frame is
  /// skipped and the tenant's framesRun is not charged.
  void runSessionFrame(Session& session);
  /// Any active session with a Ready process?
  bool anySessionReady() const;
  /// Nearest parked deadline across all active sessions (hub wait bound).
  double parkedWaitBound() const;

  ServerConfig config_;
  const blocks::BlockRegistry* registry_;
  vm::PrimitiveTable primitives_;
  /// One hub for all tenants: any session's completion callback can
  /// rouse a server sleeping in runUntilQuiet().
  vm::WakeHubPtr hub_;

  /// Published datasets: pristine mapped roots, never handed out
  /// directly (openDataset clones).
  std::unordered_map<std::string, blocks::ListPtr> datasets_;

  std::vector<std::unique_ptr<Session>> active_;  // admission order
  std::vector<SessionRecord> finished_;           // finish order
  ServerMetrics metrics_;
  std::vector<double> frameSeconds_;
  uint64_t nextId_ = 1;
  uint64_t frame_ = 0;
  size_t rotate_ = 0;  // round-robin start cursor
};

}  // namespace psnap::serve
