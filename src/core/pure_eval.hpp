// Compiling rings into worker-safe functions.
//
// Paper Listing 2 turns the user's ringed reporter into a JavaScript
// function with
//
//   body = 'return ' + aContext.expression.mappedCode() + ';';
//   aFunction = new Function(aContext.inputs[0], body);
//
// and ships it to a Web Worker. The essential property is that the shipped
// function is *pure*: a Web Worker cannot touch the DOM, the stage, or the
// interpreter, so only side-effect-free blocks survive the translation.
//
// compileRing() reproduces this: it validates that every block in the ring
// body is pure (per the BlockRegistry), snapshots the transferable
// variables the body captures lexically, and returns a thread-safe
// std::function that evaluates the body with a small re-entrant pure
// evaluator (no Process, no yielding). Impure blocks raise PurityError at
// compile time — the same moment Snap! would fail to mappedCode() them.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "blocks/block.hpp"
#include "blocks/environment.hpp"
#include "blocks/registry.hpp"

namespace psnap::core {

/// A compiled pure function of N values.
using PureFn = std::function<blocks::Value(const std::vector<blocks::Value>&)>;

/// Compile a reporter ring into a thread-safe function.
///
/// Throws PurityError when the body contains a block whose spec is not
/// `pure` (it would touch the stage/scheduler) or when a lexically
/// captured variable holds a non-transferable value (a ring).
/// The `env` fallback is consulted for captured names when the ring has no
/// captured environment of its own (C++-constructed rings).
PureFn compileRing(const blocks::RingPtr& ring,
                   const blocks::BlockRegistry& registry =
                       blocks::BlockRegistry::standard());

/// Convenience adapters for the worker facade.
std::function<blocks::Value(const blocks::Value&)> compileUnary(
    const blocks::RingPtr& ring,
    const blocks::BlockRegistry& registry =
        blocks::BlockRegistry::standard());
std::function<blocks::Value(const blocks::Value&, const blocks::Value&)>
compileBinary(const blocks::RingPtr& ring,
              const blocks::BlockRegistry& registry =
                  blocks::BlockRegistry::standard());

/// Check purity without compiling: returns the offending opcode or an
/// empty string when the ring body is fully pure.
std::string findImpureBlock(const blocks::RingPtr& ring,
                            const blocks::BlockRegistry& registry =
                                blocks::BlockRegistry::standard());

}  // namespace psnap::core
