// The paper's contribution: the parallelMap, parallelForEach, and
// mapReduce blocks (Sections 3–4), as interpreter primitives.
//
//   * reportParallelMap — Fig. 5 / Listing 2: compiles the ring to a pure
//     function, ships it to a Parallel job over real worker threads, and
//     polls for completion from the cooperative scheduler's yield loop.
//     The optional workers slot defaults to the host's worker width
//     (`aCount || navigator.hardwareConcurrency || 4`).
//   * doParallelForEach — Fig. 8–10: in parallel mode, spawns sprite
//     clones that each run the C-slot body over a share of the list
//     *concurrently on the cooperative scheduler* (the pedagogical
//     visualization: three Pitcher clones pouring at once); the collapsed
//     mode runs the body sequentially like forEach.
//   * reportMapReduce — Fig. 11–13: compiles both rings and runs the
//     MapReduce engine on a background thread, polling for completion.
#pragma once

#include "vm/process.hpp"
#include "workers/parallel.hpp"

namespace psnap::core {

/// Tuning for the parallel blocks (ablation A2 of DESIGN.md).
struct ParallelBlockOptions {
  workers::Distribution distribution = workers::Distribution::Dynamic;
  size_t chunkSize = 1;
};

/// Register reportParallelMap, doParallelForEach, reportMapReduce, and the
/// internal __foreachDriver into `table`.
void registerParallelPrimitives(vm::PrimitiveTable& table,
                                ParallelBlockOptions options = {});

/// A PrimitiveTable with both the standard palette and the parallel
/// blocks — the table a full psnap environment runs with.
vm::PrimitiveTable fullPrimitiveTable(ParallelBlockOptions options = {});

}  // namespace psnap::core
