// The paper's contribution: the parallelMap, parallelForEach, and
// mapReduce blocks (Sections 3–4), as interpreter primitives.
//
//   * reportParallelMap — Fig. 5 / Listing 2: compiles the ring to a pure
//     function, ships it to a Parallel job over real worker threads, and
//     parks the process on the job's completion callback (the
//     completion-driven successor of Listing 2's resolved() poll loop).
//     The optional workers slot defaults to the host's worker width
//     (`aCount || navigator.hardwareConcurrency || 4`).
//   * doParallelForEach — Fig. 8–10: in parallel mode, spawns sprite
//     clones that each run the C-slot body over a share of the list
//     *concurrently on the cooperative scheduler* (the pedagogical
//     visualization: three Pitcher clones pouring at once); the collapsed
//     mode runs the body sequentially like forEach.
//   * reportMapReduce — Fig. 11–13: compiles both rings and parks on the
//     engine's completion-chained pipeline.
//   * launchParallelMap / launchMapReduce / reportAwait — the deferred
//     forms: launch returns a pending Future value immediately (the
//     script keeps computing) and `await` joins it, parking only if the
//     operation is still in flight.
//
// Fault model (DESIGN.md, "Fault model"): these handlers are the
// outermost rung of the degradation ladder. When the worker substrate
// fails transiently — launch refused, transfer fault, chunk retries
// exhausted — the blocks complete the script's work anyway by collapsing
// to a sequential path that runs in slices across yields (the C++
// realisation of the paper's collapsed "in parallel" slot). User-script
// errors and deadline/cancellation trips never degrade; they fail the
// process with their error class preserved in the message.
#pragma once

#include "vm/process.hpp"
#include "workers/parallel.hpp"

namespace psnap::core {

/// Tuning for the parallel blocks (ablation A2 of DESIGN.md).
struct ParallelBlockOptions {
  workers::Distribution distribution = workers::Distribution::Dynamic;
  size_t chunkSize = 1;
  /// Per-chunk substrate-error retries inside worker jobs.
  int maxRetries = 2;
  /// Wall-clock budget per parallel block invocation; 0 means none.
  /// Expiry fails the block with a timeout-classed error.
  double deadlineSeconds = 0;
  /// Permit the sequential fallback when the substrate fails.
  bool allowDegrade = true;
};

/// Register reportParallelMap, doParallelForEach, reportMapReduce, the
/// future-returning launch blocks with reportAwait, and the internal
/// __foreachDriver into `table`.
void registerParallelPrimitives(vm::PrimitiveTable& table,
                                ParallelBlockOptions options = {});

/// A PrimitiveTable with both the standard palette and the parallel
/// blocks — the table a full psnap environment runs with.
vm::PrimitiveTable fullPrimitiveTable(ParallelBlockOptions options = {});

}  // namespace psnap::core
