// Tier-aware ring compilation: the dispatch glue between core's pure
// interpreter (pure_eval.hpp) and the native tier (native/tier.hpp).
//
// Every function built here carries BOTH execution paths. The interpreter
// closure (compileRing's output) is the reference semantics and the
// permanent fallback; the native kernel, once hot, compiled, installed,
// and validated, serves the marshalable calls. Call sites need no new
// protocol: compileUnary()/compileBinary() in pure_eval.hpp already
// return these tiered functions, so parallelMap, launch blocks, and
// mapReduce all upgrade behind their existing signatures.
//
// The tier config is snapshotted when the function is BUILT (on the
// scheduler thread, where the session's TierScope is installed), not when
// it is called (on a pool worker, which has no scope) — that is how
// per-session tier enablement reaches worker-side execution.
#pragma once

#include <functional>

#include "blocks/block.hpp"
#include "blocks/registry.hpp"
#include "blocks/value.hpp"

namespace psnap::core {

/// A tiered unary map function: `fn` is the per-item path (always valid);
/// `batch` transforms a chunk of values in place and returns true, or
/// returns false WITHOUT writing anything when the chunk is not natively
/// servable (kernel not installed, unmarshalable element, an element
/// erred, or validation failed) — the caller then runs its per-item loop.
struct TieredUnary {
  std::function<blocks::Value(const blocks::Value&)> fn;
  std::function<bool(blocks::Value*, size_t)> batch;
};

TieredUnary tieredUnary(const blocks::RingPtr& ring,
                        const blocks::BlockRegistry& registry =
                            blocks::BlockRegistry::standard());

std::function<blocks::Value(const blocks::Value&, const blocks::Value&)>
tieredBinary(const blocks::RingPtr& ring,
             const blocks::BlockRegistry& registry =
                 blocks::BlockRegistry::standard());

/// The mapReduce reducer shape: ring applied to one key's values list
/// (compiled to a Fold kernel: psnap_kernel_fold over gathered doubles).
std::function<blocks::Value(const blocks::ListPtr&)> tieredListReduce(
    const blocks::RingPtr& ring,
    const blocks::BlockRegistry& registry =
        blocks::BlockRegistry::standard());

}  // namespace psnap::core
