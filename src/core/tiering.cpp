#include "core/tiering.hpp"

#include <utility>
#include <vector>

#include "core/pure_eval.hpp"
#include "native/marshal.hpp"
#include "native/tier.hpp"

namespace psnap::core {

using blocks::BlockRegistry;
using blocks::ListPtr;
using blocks::RingPtr;
using blocks::Value;
using codegen::KernelShape;
using native::KernelState;
using native::RingKernel;
using native::TierConfig;
using native::TierManager;

namespace {

/// A parameter-reading kernel serves ValueKind::Number only: numeric text
/// coerces to the same double but must *display* as text, so handing it
/// to the kernel would pass the math and break byte-identical output.
bool marshalable(const Value& v, const RingKernel* kernel) {
  return !kernel->paramUsed || v.isNumber();
}

Value boxed(double raw, const RingKernel* kernel) {
  return native::boxResult(raw, kernel->returnsBool);
}

/// The Ready-state validation gate for one scalar call: native and
/// interpreter both run; agreement (same bits, or both erring) promotes,
/// any divergence downgrades — and the interpreter's outcome is always
/// the one surfaced, so a miscompiled kernel cannot leak a wrong value.
template <typename Interp, typename NativeCall>
Value validateScalar(RingKernel* kernel, const Interp& interp,
                     const NativeCall& nativeCall) {
  int err = 0;
  const double raw = nativeCall(&err);
  Value reference;
  try {
    reference = interp();
  } catch (...) {
    if (err) {
      TierManager::instance().promote(kernel);  // both paths erred: agree
    } else {
      TierManager::instance().downgrade(kernel);
    }
    throw;
  }
  if (err) {
    TierManager::instance().downgrade(kernel);  // native erred, interp not
    return reference;
  }
  if (native::byteIdentical(boxed(raw, kernel), reference)) {
    TierManager::instance().promote(kernel);
    return reference;
  }
  TierManager::instance().downgrade(kernel);
  return reference;
}

}  // namespace

TieredUnary tieredUnary(const RingPtr& ring, const BlockRegistry& registry) {
  PureFn compiled = compileRing(ring, registry);
  auto interp = [compiled](const Value& v) { return compiled({v}); };
  // Snapshot the session's config here, on the building thread — calls
  // run on pool workers, where no TierScope is installed.
  const TierConfig cfg = native::tierConfig();
  if (!cfg.enabled) return {interp, {}};
  RingKernel* kernel =
      TierManager::instance().lookup(*ring, KernelShape::Unary);

  auto fn = [interp, kernel, ring, cfg](const Value& v) -> Value {
    switch (kernel->currentState()) {
      case KernelState::Trusted: {
        if (!marshalable(v, kernel)) break;
        int err = 0;
        const double raw =
            kernel->unary(kernel->paramUsed ? v.asNumber() : 0.0, &err);
        if (err) break;  // interpreter raises the exact typed error
        kernel->nativeCalls.fetch_add(1, std::memory_order_relaxed);
        TierManager::instance().noteNativeItems(1);
        return boxed(raw, kernel);
      }
      case KernelState::Ready: {
        if (!marshalable(v, kernel)) break;
        return validateScalar(
            kernel, [&] { return interp(v); },
            [&](int* err) {
              return kernel->unary(kernel->paramUsed ? v.asNumber() : 0.0,
                                   err);
            });
      }
      case KernelState::Cold:
        TierManager::instance().recordCalls(kernel, ring, 1, cfg);
        break;
      default:
        break;  // Compiling/Downgraded: interpreter serves
    }
    return interp(v);
  };

  auto batch = [interp, kernel, ring, cfg](Value* items, size_t n) -> bool {
    const KernelState state = kernel->currentState();
    if (state == KernelState::Cold) {
      TierManager::instance().recordCalls(kernel, ring, n, cfg);
      return false;
    }
    if (state != KernelState::Ready && state != KernelState::Trusted) {
      return false;
    }
    if (!kernel->paramUsed && state == KernelState::Trusted) {
      // Constant body, already validated: one kernel call, then fill —
      // no marshalling buffers at all.
      int err = 0;
      const double raw = kernel->unary(0.0, &err);
      if (err) return false;
      const Value v = boxed(raw, kernel);
      for (size_t i = 0; i < n; ++i) items[i] = v;
      kernel->nativeCalls.fetch_add(n, std::memory_order_relaxed);
      TierManager::instance().noteNativeItems(n);
      return true;
    }
    std::vector<double> in;
    if (kernel->paramUsed) {
      if (!native::gatherNumbers(items, n, in)) return false;
    } else {
      in.assign(n, 0.0);  // constant body: the inputs are never read
    }
    std::vector<double> out(n);
    // The OpenMP entry point earns its thread-spawn overhead only on
    // large chunks; below that the serial loop wins.
    native::UnaryBatchFn batchFn =
        (kernel->unaryBatchOmp && n >= native::kOmpBatchThreshold)
            ? kernel->unaryBatchOmp
            : kernel->unaryBatch;
    if (batchFn(in.data(), out.data(), static_cast<long>(n)) >= 0) {
      return false;  // an element erred: the per-item loop raises it
    }
    if (state == KernelState::Ready) {
      // Validate the whole chunk before writing anything: all-or-nothing
      // keeps the caller's exact-retry invariant (every element written
      // at most once).
      for (size_t i = 0; i < n; ++i) {
        Value reference;
        try {
          reference = interp(items[i]);
        } catch (...) {
          // Native said clean, interpreter raised: divergence.
          TierManager::instance().downgrade(kernel);
          return false;
        }
        if (!native::byteIdentical(boxed(out[i], kernel), reference)) {
          TierManager::instance().downgrade(kernel);
          return false;
        }
      }
      TierManager::instance().promote(kernel);
    }
    for (size_t i = 0; i < n; ++i) items[i] = boxed(out[i], kernel);
    kernel->nativeCalls.fetch_add(n, std::memory_order_relaxed);
    TierManager::instance().noteNativeItems(n);
    return true;
  };

  return {std::move(fn), std::move(batch)};
}

std::function<Value(const Value&, const Value&)> tieredBinary(
    const RingPtr& ring, const BlockRegistry& registry) {
  PureFn compiled = compileRing(ring, registry);
  auto interp = [compiled](const Value& a, const Value& b) {
    return compiled({a, b});
  };
  const TierConfig cfg = native::tierConfig();
  if (!cfg.enabled) return interp;
  RingKernel* kernel =
      TierManager::instance().lookup(*ring, KernelShape::Binary);

  return [interp, kernel, ring, cfg](const Value& a, const Value& b) -> Value {
    const bool numeric = a.isNumber() && b.isNumber();
    switch (kernel->currentState()) {
      case KernelState::Trusted: {
        if (!numeric) break;
        int err = 0;
        const double raw = kernel->binary(a.asNumber(), b.asNumber(), &err);
        if (err) break;
        kernel->nativeCalls.fetch_add(1, std::memory_order_relaxed);
        TierManager::instance().noteNativeItems(1);
        return boxed(raw, kernel);
      }
      case KernelState::Ready: {
        if (!numeric) break;
        return validateScalar(
            kernel, [&] { return interp(a, b); },
            [&](int* err) {
              return kernel->binary(a.asNumber(), b.asNumber(), err);
            });
      }
      case KernelState::Cold:
        TierManager::instance().recordCalls(kernel, ring, 1, cfg);
        break;
      default:
        break;
    }
    return interp(a, b);
  };
}

std::function<Value(const ListPtr&)> tieredListReduce(
    const RingPtr& ring, const BlockRegistry& registry) {
  PureFn compiled = compileRing(ring, registry);
  auto interp = [compiled](const ListPtr& values) {
    return compiled({Value(values)});
  };
  const TierConfig cfg = native::tierConfig();
  if (!cfg.enabled) return interp;
  RingKernel* kernel =
      TierManager::instance().lookup(*ring, KernelShape::Fold);

  return [interp, kernel, ring, cfg](const ListPtr& values) -> Value {
    const KernelState state = kernel->currentState();
    if (state == KernelState::Cold) {
      TierManager::instance().recordCalls(kernel, ring, 1, cfg);
      return interp(values);
    }
    if (state != KernelState::Ready && state != KernelState::Trusted) {
      return interp(values);
    }
    std::vector<double> in;
    const blocks::ItemSpan items = values ? values->items() : blocks::ItemSpan();
    if (!native::gatherNumbers(items.data(), items.size(), in)) {
      return interp(values);
    }
    if (state == KernelState::Ready) {
      return validateScalar(
          kernel, [&] { return interp(values); },
          [&](int* err) {
            return kernel->fold(in.data(), static_cast<long>(in.size()),
                                err);
          });
    }
    int err = 0;
    const double raw =
        kernel->fold(in.data(), static_cast<long>(in.size()), &err);
    if (err) return interp(values);
    kernel->nativeCalls.fetch_add(1, std::memory_order_relaxed);
    TierManager::instance().noteNativeItems(in.size());
    return boxed(raw, kernel);
  };
}

}  // namespace psnap::core
