#include "core/pure_eval.hpp"

#include <algorithm>
#include <cmath>

#include "core/tiering.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace psnap::core {

using blocks::Block;
using blocks::BlockPtr;
using blocks::BlockRegistry;
using blocks::Input;
using blocks::InputKind;
using blocks::List;
using blocks::ListPtr;
using blocks::Op;
using blocks::Ring;
using blocks::RingKind;
using blocks::RingPtr;
using blocks::Value;

namespace {

constexpr double kPi = 3.14159265358979323846;

/// One pure call frame: the ring being applied and its arguments. Frames
/// nest when a ring body calls another ring (combine, map, evaluate), so
/// inner bodies still see outer formals.
struct PureFrame {
  const Ring* ring = nullptr;
  const std::vector<Value>* args = nullptr;
  const PureFrame* parent = nullptr;
  const std::unordered_map<std::string, Value>* captured = nullptr;
};

Value evalPure(const Block& block, const PureFrame& frame);

Value evalInput(const Input& input, const PureFrame& frame) {
  switch (input.kind()) {
    case InputKind::Literal:
      return input.literalValue();
    case InputKind::BlockExpr:
      return evalPure(*input.block(), frame);
    case InputKind::Empty: {
      // Resolve the blank against the innermost frame whose ring body
      // contains it.
      for (const PureFrame* f = &frame; f; f = f->parent) {
        if (!f->ring) continue;
        size_t ordinal;
        try {
          ordinal = blocks::emptySlotOrdinal(*f->ring, &input);
        } catch (const BlockError&) {
          continue;  // slot belongs to an outer ring
        }
        const std::vector<Value>& args = *f->args;
        if (args.empty()) {
          throw Error("empty slot with no arguments in worker code");
        }
        if (args.size() == 1) return args[0];
        if (ordinal >= args.size()) {
          throw Error("not enough arguments for empty slots in worker code");
        }
        return args[ordinal];
      }
      throw Error("empty slot outside of any ring in worker code");
    }
    case InputKind::Collapsed:
      return Value();
    case InputKind::ScriptSlot:
      throw PurityError("command scripts cannot run inside a worker");
  }
  return Value();
}

Value lookupVariable(const std::string& name, const PureFrame& frame) {
  for (const PureFrame* f = &frame; f; f = f->parent) {
    if (f->ring) {
      const auto& formals = f->ring->formals();
      for (size_t i = 0; i < formals.size(); ++i) {
        if (formals[i] == name) {
          return i < f->args->size() ? (*f->args)[i] : Value();
        }
      }
    }
    if (f->captured) {
      auto it = f->captured->find(name);
      if (it != f->captured->end()) return it->second;
    }
  }
  throw Error("variable '" + name + "' is not visible inside worker code");
}

/// Call a ring value from within pure code (combine / map / evaluate).
Value callPureRing(const RingPtr& ring, std::vector<Value> args,
                   const PureFrame& caller) {
  if (ring->kind() != RingKind::Reporter) {
    throw PurityError("command rings cannot run inside a worker");
  }
  PureFrame frame;
  frame.ring = ring.get();
  frame.args = &args;
  frame.parent = &caller;
  return evalPure(*ring->expression(), frame);
}

bool lessThanValues(const Value& a, const Value& b) {
  double an, bn;
  if (a.numericValue(an) && b.numericValue(bn)) return an < bn;
  std::string leftOwned, rightOwned;
  const std::string_view left =
      a.isText() ? a.textView() : std::string_view(leftOwned = a.display());
  const std::string_view right =
      b.isText() ? b.textView() : std::string_view(rightOwned = b.display());
  return psnap::strings::compareIgnoreCase(left, right) < 0;
}

Value evalPure(const Block& block, const PureFrame& frame) {
  // Dispatch on the block's cached interned id: the two switches below
  // compile to dense jump tables, replacing the pre-refactor chain of
  // string comparisons. Ids past Op::BuiltinCount (custom blocks) fall to
  // the default case and raise PurityError, as the string chain did.
  const Op op = static_cast<Op>(block.opcodeId());

  // Variable access and ring construction need the frame, so handle them
  // before generic input evaluation.
  switch (op) {
    case Op::reportGetVar:
      return lookupVariable(block.input(0).literalValue().asText(), frame);
    case Op::reifyReporter: {
      BlockPtr expression;
      if (block.arity() == 0 || block.input(0).isEmpty()) {
        static const BlockPtr identityTemplate =
            Block::make("reportIdentity", {Input::empty()});
        expression = identityTemplate;
      } else if (block.input(0).isLiteral()) {
        expression = Block::make("reportIdentity",
                                 {Input(block.input(0).literalValue())});
      } else {
        expression = block.input(0).block();
      }
      std::vector<std::string> formals;
      for (size_t i = 1; i < block.arity(); ++i) {
        formals.push_back(block.input(i).literalValue().asText());
      }
      // The returned ring carries no captured environment; name resolution
      // happens through the PureFrame chain when it is called immediately
      // (combine/map/evaluate). Escaping rings lose their defining frame.
      return Value(Ring::reporter(expression, std::move(formals)));
    }
    default:
      break;
  }

  // Strictly evaluate all inputs; small arities (almost all blocks) use a
  // stack buffer instead of a heap vector.
  constexpr size_t kStackInputs = 8;
  const size_t n = block.arity();
  Value stackBuf[kStackInputs];
  std::vector<Value> heapBuf;
  Value* in;
  if (n <= kStackInputs) {
    in = stackBuf;
  } else {
    heapBuf.resize(n);
    in = heapBuf.data();
  }
  for (size_t i = 0; i < n; ++i) in[i] = evalInput(block.input(i), frame);

  switch (op) {
    // --- arithmetic ---------------------------------------------------------
    case Op::reportSum:
      return Value(in[0].asNumber() + in[1].asNumber());
    case Op::reportDifference:
      return Value(in[0].asNumber() - in[1].asNumber());
    case Op::reportProduct:
      return Value(in[0].asNumber() * in[1].asNumber());
    case Op::reportQuotient: {
      double d = in[1].asNumber();
      if (d == 0) throw Error("division by zero");
      return Value(in[0].asNumber() / d);
    }
    case Op::reportModulus: {
      double d = in[1].asNumber();
      if (d == 0) throw Error("modulus by zero");
      double r = std::fmod(in[0].asNumber(), d);
      if (r != 0 && ((r < 0) != (d < 0))) r += d;
      return Value(r);
    }
    case Op::reportPower:
      return Value(std::pow(in[0].asNumber(), in[1].asNumber()));
    case Op::reportRound:
      return Value(std::round(in[0].asNumber()));
    case Op::reportMonadic: {
      const std::string fn = psnap::strings::toLower(in[0].asText());
      const double x = in[1].asNumber();
      if (fn == "sqrt") {
        if (x < 0) throw Error("sqrt of a negative number");
        return Value(std::sqrt(x));
      }
      if (fn == "abs") return Value(std::fabs(x));
      if (fn == "floor") return Value(std::floor(x));
      if (fn == "ceiling") return Value(std::ceil(x));
      if (fn == "sin") return Value(std::sin(x * kPi / 180.0));
      if (fn == "cos") return Value(std::cos(x * kPi / 180.0));
      if (fn == "tan") return Value(std::tan(x * kPi / 180.0));
      if (fn == "asin") return Value(std::asin(x) * 180.0 / kPi);
      if (fn == "acos") return Value(std::acos(x) * 180.0 / kPi);
      if (fn == "atan") return Value(std::atan(x) * 180.0 / kPi);
      if (fn == "ln") {
        if (x <= 0) throw Error("ln of a non-positive number");
        return Value(std::log(x));
      }
      if (fn == "log") {
        if (x <= 0) throw Error("log of a non-positive number");
        return Value(std::log10(x));
      }
      if (fn == "e^") return Value(std::exp(x));
      if (fn == "10^") return Value(std::pow(10.0, x));
      throw Error("unknown monadic function \"" + fn + "\" in worker code");
    }

    // --- comparison / logic -------------------------------------------------
    case Op::reportEquals:
      return Value(in[0].equals(in[1]));
    case Op::reportLessThan:
      return Value(lessThanValues(in[0], in[1]));
    case Op::reportGreaterThan:
      return Value(lessThanValues(in[1], in[0]));
    case Op::reportAnd:
      return Value(in[0].asBoolean() && in[1].asBoolean());
    case Op::reportOr:
      return Value(in[0].asBoolean() || in[1].asBoolean());
    case Op::reportNot:
      return Value(!in[0].asBoolean());
    case Op::reportIfElse:
      return in[0].asBoolean() ? in[1] : in[2];
    case Op::reportIsA: {
      const std::string type = psnap::strings::toLower(in[1].asText());
      const char* actual = blocks::valueKindName(in[0].kind());
      return Value(type == actual ||
                   (type == "nothing" && in[0].isNothing()));
    }
    case Op::reportIdentity:
      return in[0];

    // --- text ---------------------------------------------------------------
    case Op::reportJoinWords: {
      std::string out;
      for (size_t i = 0; i < n; ++i) out += in[i].asText();
      return Value(out);
    }
    case Op::reportLetter: {
      const std::string text = in[1].asText();
      long long index = in[0].asInteger();
      if (index < 1 || static_cast<size_t>(index) > text.size()) {
        return Value(std::string());
      }
      return Value(std::string(1, text[static_cast<size_t>(index - 1)]));
    }
    case Op::reportStringSize:
      return Value(in[0].asText().size());
    case Op::reportUnicode: {
      const std::string text = in[0].asText();
      if (text.empty()) throw Error("unicode of empty text");
      return Value(static_cast<double>(static_cast<unsigned char>(text[0])));
    }
    case Op::reportUnicodeAsLetter:
      return Value(
          std::string(1, static_cast<char>(in[0].asInteger() & 0xff)));
    case Op::reportSplit: {
      const std::string text = in[0].asText();
      const std::string sep = in[1].asText();
      auto out = List::make();
      std::vector<std::string> parts;
      if (sep == "whitespace" || sep == "word" || sep.empty()) {
        parts = psnap::strings::splitWhitespace(text);
      } else if (sep == "letter") {
        for (char ch : text) parts.emplace_back(1, ch);
      } else if (sep == "line") {
        parts = psnap::strings::split(text, '\n');
      } else if (sep.size() == 1) {
        parts = psnap::strings::split(text, sep[0]);
      } else {
        throw Error("multi-character split is unsupported in worker code");
      }
      for (std::string& part : parts) out->add(Value(std::move(part)));
      return Value(out);
    }

    // --- lists --------------------------------------------------------------
    case Op::reportNewList: {
      auto list = List::make();
      for (size_t i = 0; i < n; ++i) list->add(in[i]);
      return Value(list);
    }
    case Op::reportListItem:
      return in[1].asList()->item(static_cast<size_t>(in[0].asInteger()));
    case Op::reportListLength:
      return Value(in[0].asList()->length());
    case Op::reportListContainsItem:
      return Value(in[0].asList()->contains(in[1]));
    case Op::reportListIndex: {
      const ListPtr& list = in[1].asList();
      for (size_t i = 1; i <= list->length(); ++i) {
        if (list->item(i).equals(in[0])) return Value(i);
      }
      return Value(0);
    }
    case Op::reportCONS: {
      auto out = List::make();
      out->add(in[0]);
      for (const Value& v : in[1].asList()->items()) out->add(v);
      return Value(out);
    }
    case Op::reportCDR: {
      const ListPtr& list = in[0].asList();
      if (list->empty()) throw Error("all but first of empty list");
      auto out = List::make();
      for (size_t i = 2; i <= list->length(); ++i) out->add(list->item(i));
      return Value(out);
    }
    case Op::reportNumbers: {
      long long lo = in[0].asInteger();
      long long hi = in[1].asInteger();
      auto out = List::make();
      if (lo <= hi) {
        for (long long v = lo; v <= hi; ++v) out->add(Value(v));
      } else {
        for (long long v = lo; v >= hi; --v) out->add(Value(v));
      }
      return Value(out);
    }
    case Op::reportSorted: {
      auto out = List::make(in[0].asList()->items());
      auto& items = out->mutableItems();
      std::stable_sort(items.begin(), items.end(), lessThanValues);
      return Value(out);
    }

    // --- higher-order functions ---------------------------------------------
    case Op::reportMap: {
      const RingPtr& fn = in[0].asRing();
      auto out = List::make();
      for (const Value& item : in[1].asList()->items()) {
        out->add(callPureRing(fn, {item}, frame));
      }
      return Value(out);
    }
    case Op::reportKeep: {
      const RingPtr& pred = in[0].asRing();
      auto out = List::make();
      for (const Value& item : in[1].asList()->items()) {
        if (callPureRing(pred, {item}, frame).asBoolean()) out->add(item);
      }
      return Value(out);
    }
    case Op::reportCombine: {
      const ListPtr& list = in[0].asList();
      const RingPtr& fn = in[1].asRing();
      if (list->empty()) return Value(0);
      Value acc = list->item(1);
      for (size_t i = 2; i <= list->length(); ++i) {
        acc = callPureRing(fn, {acc, list->item(i)}, frame);
      }
      return acc;
    }
    case Op::evaluate: {
      const RingPtr& fn = in[0].asRing();
      std::vector<Value> args(in + 1, in + n);
      return callPureRing(fn, std::move(args), frame);
    }

    default:
      throw PurityError("block " + block.opcode() +
                        " cannot run inside a worker");
  }
}

/// Collect every variable name the body reads.
void collectVariableReads(const Block& block,
                          std::vector<std::string>& names) {
  if (block.is(Op::reportGetVar) && block.arity() == 1 &&
      block.input(0).isLiteral()) {
    names.push_back(block.input(0).literalValue().asText());
  }
  for (const Input& input : block.inputs()) {
    if (input.isBlock()) collectVariableReads(*input.block(), names);
    if (input.isScript()) {
      for (const BlockPtr& b : input.script()->blocks()) {
        collectVariableReads(*b, names);
      }
    }
  }
}

void checkPurity(const Block& block, const BlockRegistry& registry,
                 std::string& offender) {
  if (!offender.empty()) return;
  const blocks::BlockSpec* spec = registry.specOf(block.opcodeId());
  if (!spec) {
    offender = block.opcode();
    return;
  }
  if (!spec->pure && !block.is(Op::evaluate)) {
    offender = block.opcode();
    return;
  }
  for (const Input& input : block.inputs()) {
    if (input.isBlock()) checkPurity(*input.block(), registry, offender);
    if (input.isScript()) {
      offender = block.opcode();  // C-slots imply commands
      return;
    }
  }
}

}  // namespace

std::string findImpureBlock(const RingPtr& ring,
                            const BlockRegistry& registry) {
  if (ring->kind() != RingKind::Reporter) return "<command ring>";
  std::string offender;
  checkPurity(*ring->expression(), registry, offender);
  return offender;
}

PureFn compileRing(const RingPtr& ring, const BlockRegistry& registry) {
  if (!ring) throw Error("compileRing: null ring");
  std::string offender = findImpureBlock(ring, registry);
  if (!offender.empty()) {
    throw PurityError("ring contains block '" + offender +
                      "' which cannot run in a worker");
  }

  // Snapshot the captured (lexical) variables the body reads; the snapshot
  // is structured-cloned so the worker shares nothing with the main thread.
  auto captured = std::make_shared<std::unordered_map<std::string, Value>>();
  std::vector<std::string> reads;
  collectVariableReads(*ring->expression(), reads);
  const auto& formals = ring->formals();
  for (const std::string& name : reads) {
    if (std::find(formals.begin(), formals.end(), name) != formals.end()) {
      continue;  // bound at call time
    }
    if (ring->captured() && ring->captured()->isDeclared(name)) {
      Value value = ring->captured()->get(name);
      if (!value.isTransferable()) {
        throw PurityError("captured variable '" + name +
                          "' holds a non-transferable value");
      }
      captured->emplace(name, value.structuredClone());
    }
    // Unresolvable names raise at call time inside the worker.
  }

  // The closure holds the ring (keeping the AST alive) and the snapshot.
  return [ring, captured](const std::vector<Value>& args) -> Value {
    PureFrame frame;
    frame.ring = ring.get();
    frame.args = &args;
    frame.captured = captured.get();
    return evalPure(*ring->expression(), frame);
  };
}

// The adapters route through the tiering layer (core/tiering.hpp): the
// interpreter closure stays the reference path, and a ring that goes hot
// gains a native kernel behind the same signature at every call site.
std::function<Value(const Value&)> compileUnary(
    const RingPtr& ring, const BlockRegistry& registry) {
  return tieredUnary(ring, registry).fn;
}

std::function<Value(const Value&, const Value&)> compileBinary(
    const RingPtr& ring, const BlockRegistry& registry) {
  return tieredBinary(ring, registry);
}

}  // namespace psnap::core
