#include "core/parallel_blocks.hpp"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "core/pure_eval.hpp"
#include "mapreduce/engine.hpp"
#include "support/error.hpp"
#include "vm/host.hpp"
#include "workers/stats.hpp"

namespace psnap::core {

using blocks::Block;
using blocks::Input;
using blocks::List;
using blocks::ListPtr;
using blocks::RingPtr;
using blocks::Value;
using vm::Context;
using vm::Process;

namespace {

/// Items mapped per slice on the sequential fallback path — the block
/// stays cooperative (other processes keep running) while it works off
/// the list without the worker substrate.
constexpr size_t kFallbackSliceItems = 256;

/// State stashed in the context across yields for doParallelForEach.
struct ForEachJob {
  std::vector<std::shared_ptr<const vm::ProcessStatus>> statuses;
  std::vector<vm::SpriteApi*> clones;
};

/// State stashed in the context across yields for reportParallelMap:
/// either a live worker-substrate job, or the sequential fallback's
/// cursor after a degrade.
struct MapJob {
  std::shared_ptr<workers::Parallel> parallel;  // null once degraded
  workers::MapFn fn;
  ListPtr source;
  std::vector<Value> out;  // fallback results, filled slice by slice
  size_t next = 0;         // fallback cursor (0-based)
};

/// Resolve the optional worker/parallelism slot: collapsed or blank means
/// "use the default".
bool slotIsDefault(const Context& c, size_t index) {
  return c.isCollapsed(index) || c.inputs[index].isNothing() ||
         (c.inputs[index].isText() && c.inputs[index].asText().empty());
}

/// Rethrow a worker-side failure so the process error message carries the
/// block name and the error keeps its class (a TypeError from the ring
/// stays a TypeError; a deadline trip stays a TimeoutError).
[[noreturn]] void failBlock(const char* blockName, ErrorClass errorClass,
                            const std::string& message) {
  throwAsClass(errorClass,
               std::string(blockName) + " failed: " +
                   stripClassPrefix(errorClass, message));
}

/// Move `job` onto the sequential fallback path (substrate unusable) and
/// account for the downgrade.
void degradeMapJob(MapJob& job) {
  job.parallel.reset();
  workers::substrateStats().bump(&workers::SubstrateStats::downgrades);
}

// ---------------------------------------------------------------------------
// reportParallelMap — the faithful translation of paper Listing 2.
//
// The Parallel handle is now backed by the shared WorkerPool (chunk tasks
// in a TaskGroup instead of per-op threads), but the Listing-2 contract
// this poll loop relies on is unchanged: map() returns immediately after
// submission, resolved() is a lock-free flag read, and the process
// re-polls from the scheduler's yield loop until the workers finish.
//
// Degradation: a transient substrate failure — at construction (the
// transfer fault), at launch (pool refused), after the run (retries
// exhausted, clone-out fault) — collapses the block to the sequential
// fallback, which maps kFallbackSliceItems per slice across yields so the
// scheduler stays live. The fallback path has no fault points, so every
// chaos scenario converges.
// ---------------------------------------------------------------------------
void parallelMapHandler(Process& p, Context& c, ParallelBlockOptions opts) {
  // First invocation: all three declared inputs are evaluated; build the
  // function, create the Parallel job, stash it, and yield.
  if (!c.state) {
    const RingPtr& ring = c.inputs[0].asRing();
    const ListPtr& list = c.inputs[1].asList();
    size_t workerCount = slotIsDefault(c, 2)
                             ? p.host().maxWorkers()
                             : static_cast<size_t>(std::max<long long>(
                                   1, c.inputs[2].asInteger()));
    // body = 'return ' + expression.mappedCode(); — here: compile the
    // ring into a thread-safe pure function.
    auto job = std::make_shared<MapJob>();
    job->fn = compileUnary(ring, p.registry());
    job->source = list;
    workers::ParallelOptions parOptions;
    parOptions.maxWorkers = workerCount;
    parOptions.distribution = opts.distribution;
    parOptions.chunkSize = opts.chunkSize;
    parOptions.maxRetries = opts.maxRetries;
    parOptions.deadlineSeconds = opts.deadlineSeconds;
    parOptions.allowDegrade = opts.allowDegrade;
    // Chain the op under the process's own token (null when the process
    // has none): stopping the script — or shedding the tenant that owns
    // it — cancels the in-flight pool work at its next chunk boundary.
    parOptions.cancel = p.cancelToken();
    try {
      job->parallel = std::make_shared<workers::Parallel>(list, parOptions);
      job->parallel->map(job->fn);
    } catch (const SubstrateError&) {
      // Clone-in refused (transfer fault): fall back before launch.
      if (!opts.allowDegrade) throw;
      degradeMapJob(*job);
    }
    c.state = job;
    // this.pushContext('doYield'); this.pushContext();
    p.retryAfterYield(c);
    return;
  }
  // Subsequent invocations: check whether the workers are done; if so,
  // return the resulting array.
  auto job = std::static_pointer_cast<MapJob>(c.state);
  if (job->parallel) {
    if (!job->parallel->resolved()) {
      p.retryAfterYield(c);
      return;
    }
    if (job->parallel->failed()) {
      const ErrorClass errorClass = job->parallel->errorClass();
      if (errorClass != ErrorClass::Substrate || !opts.allowDegrade) {
        failBlock("parallel map", errorClass,
                  job->parallel->errorMessage());
      }
      // Retries exhausted on the substrate: collapse and restart
      // sequentially — the handler still owns the pristine input list.
      degradeMapJob(*job);
      p.retryAfterYield(c);
      return;
    }
    try {
      p.returnValue(Value(List::make(job->parallel->takeData())));
    } catch (const SubstrateError&) {
      // Clone-out refused (transfer fault) on an otherwise clean run.
      if (!opts.allowDegrade) throw;
      degradeMapJob(*job);
      p.retryAfterYield(c);
    }
    return;
  }
  // Sequential fallback: one cooperative slice of the list per frame.
  // User-script errors from fn propagate as usual (they are
  // deterministic — the parallel path would have hit them too).
  const size_t n = job->source->length();
  const size_t end = std::min(n, job->next + kFallbackSliceItems);
  job->out.reserve(n);
  for (; job->next < end; ++job->next) {
    job->out.push_back(job->fn(job->source->item(job->next + 1)));
  }
  if (job->next < n) {
    p.retryAfterYield(c);
    return;
  }
  p.returnValue(Value(List::make(std::move(job->out))));
}

// ---------------------------------------------------------------------------
// doParallelForEach — clones pouring in parallel (Fig. 8–10).
// ---------------------------------------------------------------------------
void parallelForEachHandler(Process& p, Context& c) {
  // Non-strict: evaluate var name, list, and the optional parallelism slot.
  if (c.inputs.size() < 3) {
    p.evalInput(c, c.inputs.size());
    return;
  }

  // Sequential mode: the parallelism slot is collapsed (Fig. 8b). Behave
  // exactly like forEach: the single sprite serves every item in turn.
  // `phase == 2` marks a degraded entry — the host could not launch
  // sibling processes, so the parallel request collapsed to this path
  // (same semantics, one server) and the downgrade was recorded.
  if (c.isCollapsed(2) || c.phase == 2 || c.counter > 0) {
    const ListPtr& list = c.inputs[1].asList();
    if (static_cast<size_t>(c.counter) >= list->length()) {
      p.finishCommand();
      return;
    }
    if (c.phase == 1) {
      c.phase = 0;
      p.retryAfterYield(c);
      return;
    }
    ++c.counter;
    c.phase = 1;
    auto frame = blocks::Environment::make(c.env);
    frame->declare(c.inputs[0].asText(),
                   list->item(static_cast<size_t>(c.counter)));
    p.pushScript(c.block->input(3).script().get(), frame);
    return;
  }

  // Parallel mode.
  if (!c.state) {
    const std::string varName = c.inputs[0].asText();
    const ListPtr& list = c.inputs[1].asList();
    const size_t n = list->length();
    if (n == 0) {
      p.finishCommand();
      return;
    }
    // "If empty, it defaults to the length of the input list."
    size_t clones = c.inputs[2].isNothing()
                        ? n
                        : static_cast<size_t>(std::max<long long>(
                              1, c.inputs[2].asInteger()));
    clones = std::min(clones, n);

    auto job = std::make_shared<ForEachJob>();
    for (size_t j = 0; j < clones; ++j) {
      // Round-robin distribution: clone j serves items j+1, j+1+k, …
      auto chunk = List::make();
      for (size_t i = j + 1; i <= n; i += clones) {
        chunk->add(list->item(i));
      }
      // The system spawns clones of the sprite to serve the items. A null
      // clone only degrades the *visualization* — the chunk still runs as
      // its own cooperative process on the original sprite.
      vm::SpriteApi* clone = p.host().makeClone(p.sprite(), "");
      if (clone) job->clones.push_back(clone);

      // Driver: run the body for each item of the chunk, then remove the
      // clone.
      auto driver = Block::make(
          "__foreachDriver",
          {Input(Value(varName)), Input(Value(chunk)),
           Input(c.block->input(3).script())});
      auto script = blocks::Script::make(
          {driver, Block::make("removeClone")});
      auto env = blocks::Environment::make(c.env);
      try {
        job->statuses.push_back(
            p.host().launchScript(script, env, clone ? clone : p.sprite()));
      } catch (const std::exception&) {
        // The host cannot run sibling processes at all (headless
        // NullHost). Only the first launch can degrade — later chunks are
        // already running and a sequential restart would double-serve
        // their items. Collapse to the single-server sequential mode
        // (phase == 2 marks the degraded entry) and record the downgrade.
        if (j != 0) throw;
        if (clone) p.host().removeClone(clone);
        workers::substrateStats().bump(&workers::SubstrateStats::downgrades);
        c.phase = 2;
        p.retryAfterYield(c);
        return;
      }
    }
    c.state = job;
    p.retryAfterYield(c);
    return;
  }

  // Poll the clone processes.
  auto job = std::static_pointer_cast<ForEachJob>(c.state);
  for (const auto& status : job->statuses) {
    if (!status->done) {
      p.retryAfterYield(c);
      return;
    }
  }
  for (const auto& status : job->statuses) {
    if (status->errored) {
      throw Error("parallel forEach clone failed: " + status->error);
    }
  }
  p.finishCommand();
}

// ---------------------------------------------------------------------------
// reportMapReduce — Fig. 11/13. The Job pipeline is one pooled task (not
// a dedicated thread); this handler polls it exactly like Listing 2. The
// engine owns its degradation (mr::run reruns sequentially on transient
// substrate failure; the Job drains inline if the pool refuses the
// pipeline task), so the handler only relays the typed failure.
// ---------------------------------------------------------------------------
void mapReduceHandler(Process& p, Context& c, ParallelBlockOptions opts) {
  if (!c.state) {
    const RingPtr& mapRing = c.inputs[0].asRing();
    const RingPtr& reduceRing = c.inputs[1].asRing();
    const ListPtr& list = c.inputs[2].asList();
    auto mapFn = compileUnary(mapRing, p.registry());
    auto reduceCompiled = compileRing(reduceRing, p.registry());
    mr::ReduceFn reduceFn = [reduceCompiled](const ListPtr& values) {
      return reduceCompiled({Value(values)});
    };
    mr::Options mrOptions;
    mrOptions.workers = p.host().maxWorkers();
    mrOptions.maxRetries = opts.maxRetries;
    mrOptions.deadlineSeconds = opts.deadlineSeconds;
    mrOptions.allowDegrade = opts.allowDegrade;
    // Same chaining as parallelMap: the pipeline dies with the process.
    mrOptions.cancel = p.cancelToken();
    auto job = std::make_shared<mr::Job>(list, mapFn, reduceFn, mrOptions);
    c.state = job;
    p.retryAfterYield(c);
    return;
  }
  auto job = std::static_pointer_cast<mr::Job>(c.state);
  if (!job->resolved()) {
    p.retryAfterYield(c);
    return;
  }
  if (job->failed()) {
    failBlock("mapReduce", job->errorClass(), job->errorMessage());
  }
  p.returnValue(Value(job->result()));
}

}  // namespace

void registerParallelPrimitives(vm::PrimitiveTable& table,
                                ParallelBlockOptions options) {
  table.add("reportParallelMap", [options](Process& p, Context& c) {
    parallelMapHandler(p, c, options);
  });
  table.add("doParallelForEach", parallelForEachHandler);
  table.add("reportMapReduce", [options](Process& p, Context& c) {
    mapReduceHandler(p, c, options);
  });
  // The per-clone chunk driver shares doForEach's iteration logic.
  const vm::Handler* forEach = table.find("doForEach");
  if (!forEach) {
    throw BlockError(
        "registerParallelPrimitives requires the standard palette");
  }
  table.add("__foreachDriver", *forEach);
}

vm::PrimitiveTable fullPrimitiveTable(ParallelBlockOptions options) {
  vm::PrimitiveTable table = vm::PrimitiveTable::standard();
  registerParallelPrimitives(table, options);
  return table;
}

}  // namespace psnap::core
