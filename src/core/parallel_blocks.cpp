#include "core/parallel_blocks.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/pure_eval.hpp"
#include "mapreduce/engine.hpp"
#include "support/error.hpp"
#include "vm/host.hpp"

namespace psnap::core {

using blocks::Block;
using blocks::Input;
using blocks::List;
using blocks::ListPtr;
using blocks::RingPtr;
using blocks::Value;
using vm::Context;
using vm::Process;

namespace {

/// State stashed in the context across yields for doParallelForEach.
struct ForEachJob {
  std::vector<std::shared_ptr<const vm::ProcessStatus>> statuses;
  std::vector<vm::SpriteApi*> clones;
};

/// Resolve the optional worker/parallelism slot: collapsed or blank means
/// "use the default".
bool slotIsDefault(const Context& c, size_t index) {
  return c.isCollapsed(index) || c.inputs[index].isNothing() ||
         (c.inputs[index].isText() && c.inputs[index].asText().empty());
}

// ---------------------------------------------------------------------------
// reportParallelMap — the faithful translation of paper Listing 2.
//
// The Parallel handle is now backed by the shared WorkerPool (chunk tasks
// in a TaskGroup instead of per-op threads), but the Listing-2 contract
// this poll loop relies on is unchanged: map() returns immediately after
// submission, resolved() is a lock-free flag read, and the process
// re-polls from the scheduler's yield loop until the workers finish.
// ---------------------------------------------------------------------------
void parallelMapHandler(Process& p, Context& c, ParallelBlockOptions opts) {
  // First invocation: all three declared inputs are evaluated; build the
  // function, create the Parallel job, stash it, and yield.
  if (!c.state) {
    const RingPtr& ring = c.inputs[0].asRing();
    const ListPtr& list = c.inputs[1].asList();
    size_t workerCount = slotIsDefault(c, 2)
                             ? p.host().maxWorkers()
                             : static_cast<size_t>(std::max<long long>(
                                   1, c.inputs[2].asInteger()));
    // body = 'return ' + expression.mappedCode(); — here: compile the
    // ring into a thread-safe pure function.
    auto fn = compileUnary(ring, p.registry());
    auto job = std::make_shared<workers::Parallel>(
        list, workers::ParallelOptions{.maxWorkers = workerCount,
                                       .distribution = opts.distribution,
                                       .chunkSize = opts.chunkSize});
    job->map(fn);
    c.state = job;
    // this.pushContext('doYield'); this.pushContext();
    p.retryAfterYield(c);
    return;
  }
  // Subsequent invocations: check whether the workers are done; if so,
  // return the resulting array.
  auto job = std::static_pointer_cast<workers::Parallel>(c.state);
  if (!job->resolved()) {
    p.retryAfterYield(c);
    return;
  }
  if (job->failed()) {
    throw Error("parallel map failed: " + job->errorMessage());
  }
  p.returnValue(Value(List::make(job->takeData())));
}

// ---------------------------------------------------------------------------
// doParallelForEach — clones pouring in parallel (Fig. 8–10).
// ---------------------------------------------------------------------------
void parallelForEachHandler(Process& p, Context& c) {
  // Non-strict: evaluate var name, list, and the optional parallelism slot.
  if (c.inputs.size() < 3) {
    p.evalInput(c, c.inputs.size());
    return;
  }

  // Sequential mode: the parallelism slot is collapsed (Fig. 8b). Behave
  // exactly like forEach: the single sprite serves every item in turn.
  if (c.isCollapsed(2)) {
    const ListPtr& list = c.inputs[1].asList();
    if (static_cast<size_t>(c.counter) >= list->length()) {
      p.finishCommand();
      return;
    }
    if (c.phase == 1) {
      c.phase = 0;
      p.retryAfterYield(c);
      return;
    }
    ++c.counter;
    c.phase = 1;
    auto frame = blocks::Environment::make(c.env);
    frame->declare(c.inputs[0].asText(),
                   list->item(static_cast<size_t>(c.counter)));
    p.pushScript(c.block->input(3).script().get(), frame);
    return;
  }

  // Parallel mode.
  if (!c.state) {
    const std::string varName = c.inputs[0].asText();
    const ListPtr& list = c.inputs[1].asList();
    const size_t n = list->length();
    if (n == 0) {
      p.finishCommand();
      return;
    }
    // "If empty, it defaults to the length of the input list."
    size_t clones = c.inputs[2].isNothing()
                        ? n
                        : static_cast<size_t>(std::max<long long>(
                              1, c.inputs[2].asInteger()));
    clones = std::min(clones, n);

    auto job = std::make_shared<ForEachJob>();
    for (size_t j = 0; j < clones; ++j) {
      // Round-robin distribution: clone j serves items j+1, j+1+k, …
      auto chunk = List::make();
      for (size_t i = j + 1; i <= n; i += clones) {
        chunk->add(list->item(i));
      }
      // The system spawns clones of the sprite to serve the items.
      vm::SpriteApi* clone = p.host().makeClone(p.sprite(), "");
      if (clone) job->clones.push_back(clone);

      // Driver: run the body for each item of the chunk, then remove the
      // clone.
      auto driver = Block::make(
          "__foreachDriver",
          {Input(Value(varName)), Input(Value(chunk)),
           Input(c.block->input(3).script())});
      auto script = blocks::Script::make(
          {driver, Block::make("removeClone")});
      auto env = blocks::Environment::make(c.env);
      job->statuses.push_back(
          p.host().launchScript(script, env, clone ? clone : p.sprite()));
    }
    c.state = job;
    p.retryAfterYield(c);
    return;
  }

  // Poll the clone processes.
  auto job = std::static_pointer_cast<ForEachJob>(c.state);
  for (const auto& status : job->statuses) {
    if (!status->done) {
      p.retryAfterYield(c);
      return;
    }
  }
  for (const auto& status : job->statuses) {
    if (status->errored) {
      throw Error("parallel forEach clone failed: " + status->error);
    }
  }
  p.finishCommand();
}

// ---------------------------------------------------------------------------
// reportMapReduce — Fig. 11/13. The Job pipeline is one pooled task (not
// a dedicated thread); this handler polls it exactly like Listing 2.
// ---------------------------------------------------------------------------
void mapReduceHandler(Process& p, Context& c) {
  if (!c.state) {
    const RingPtr& mapRing = c.inputs[0].asRing();
    const RingPtr& reduceRing = c.inputs[1].asRing();
    const ListPtr& list = c.inputs[2].asList();
    auto mapFn = compileUnary(mapRing, p.registry());
    auto reduceCompiled = compileRing(reduceRing, p.registry());
    mr::ReduceFn reduceFn = [reduceCompiled](const ListPtr& values) {
      return reduceCompiled({Value(values)});
    };
    auto job = std::make_shared<mr::Job>(
        list, mapFn, reduceFn,
        mr::Options{.workers = p.host().maxWorkers()});
    c.state = job;
    p.retryAfterYield(c);
    return;
  }
  auto job = std::static_pointer_cast<mr::Job>(c.state);
  if (!job->resolved()) {
    p.retryAfterYield(c);
    return;
  }
  if (job->failed()) {
    throw Error("mapReduce failed: " + job->errorMessage());
  }
  p.returnValue(Value(job->result()));
}

}  // namespace

void registerParallelPrimitives(vm::PrimitiveTable& table,
                                ParallelBlockOptions options) {
  table.add("reportParallelMap", [options](Process& p, Context& c) {
    parallelMapHandler(p, c, options);
  });
  table.add("doParallelForEach", parallelForEachHandler);
  table.add("reportMapReduce", mapReduceHandler);
  // The per-clone chunk driver shares doForEach's iteration logic.
  const vm::Handler* forEach = table.find("doForEach");
  if (!forEach) {
    throw BlockError(
        "registerParallelPrimitives requires the standard palette");
  }
  table.add("__foreachDriver", *forEach);
}

vm::PrimitiveTable fullPrimitiveTable(ParallelBlockOptions options) {
  vm::PrimitiveTable table = vm::PrimitiveTable::standard();
  registerParallelPrimitives(table, options);
  return table;
}

}  // namespace psnap::core
