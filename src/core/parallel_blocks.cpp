#include "core/parallel_blocks.hpp"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "blocks/future.hpp"
#include "core/pure_eval.hpp"
#include "core/tiering.hpp"
#include "mapreduce/engine.hpp"
#include "support/error.hpp"
#include "vm/host.hpp"
#include "workers/stats.hpp"

namespace psnap::core {

using blocks::Block;
using blocks::Input;
using blocks::List;
using blocks::ListPtr;
using blocks::RingPtr;
using blocks::Value;
using vm::Context;
using vm::Process;

namespace {

/// Items mapped per slice on the sequential fallback path — the block
/// stays cooperative (other processes keep running) while it works off
/// the list without the worker substrate.
constexpr size_t kFallbackSliceItems = 256;

/// State stashed in the context across yields for doParallelForEach.
struct ForEachJob {
  std::vector<std::shared_ptr<const vm::ProcessStatus>> statuses;
  std::vector<vm::SpriteApi*> clones;
};

/// State stashed in the context across yields for reportParallelMap:
/// either a live worker-substrate job, or the sequential fallback's
/// cursor after a degrade.
struct MapJob {
  std::shared_ptr<workers::Parallel> parallel;  // null once degraded
  workers::MapFn fn;
  ListPtr source;
  std::vector<Value> out;  // fallback results, filled slice by slice
  size_t next = 0;         // fallback cursor (0-based)
};

/// Resolve the optional worker/parallelism slot: collapsed or blank means
/// "use the default".
bool slotIsDefault(const Context& c, size_t index) {
  return c.isCollapsed(index) || c.inputs[index].isNothing() ||
         (c.inputs[index].isText() && c.inputs[index].asText().empty());
}

/// Rethrow a worker-side failure so the process error message carries the
/// block name and the error keeps its class (a TypeError from the ring
/// stays a TypeError; a deadline trip stays a TimeoutError).
[[noreturn]] void failBlock(const char* blockName, ErrorClass errorClass,
                            const std::string& message) {
  throwAsClass(errorClass,
               std::string(blockName) + " failed: " +
                   stripClassPrefix(errorClass, message));
}

/// Move `job` onto the sequential fallback path (substrate unusable) and
/// account for the downgrade.
void degradeMapJob(MapJob& job) {
  job.parallel.reset();
  workers::substrateStats().bump(&workers::SubstrateStats::downgrades);
}

// ---------------------------------------------------------------------------
// reportParallelMap — the paper's Listing 2, completion-driven.
//
// The Parallel handle is backed by the shared WorkerPool (chunk tasks in
// a TaskGroup instead of per-op threads). Where Listing 2 re-polls
// `operation._resolved` from the scheduler's yield loop, this handler
// parks the process on the operation's completion callback: map() returns
// immediately after submission, the process consumes zero frames while
// the workers run, and the worker that finishes the last chunk wakes it.
//
// Degradation: a transient substrate failure — at construction (the
// transfer fault), at launch (pool refused), after the run (retries
// exhausted, clone-out fault) — collapses the block to the sequential
// fallback, which maps kFallbackSliceItems per slice across yields so the
// scheduler stays live (the fallback runs *on* the process, so it slices
// cooperatively instead of parking). The fallback path has no fault
// points, so every chaos scenario converges.
// ---------------------------------------------------------------------------
void parallelMapHandler(Process& p, Context& c, ParallelBlockOptions opts) {
  // First invocation: all three declared inputs are evaluated; build the
  // function, create the Parallel job, stash it, and yield.
  if (!c.state) {
    const RingPtr& ring = c.inputs[0].asRing();
    const ListPtr& list = c.inputs[1].asList();
    size_t workerCount = slotIsDefault(c, 2)
                             ? p.host().maxWorkers()
                             : static_cast<size_t>(std::max<long long>(
                                   1, c.inputs[2].asInteger()));
    // body = 'return ' + expression.mappedCode(); — here: compile the
    // ring into a thread-safe pure function (tiered: a hot ring swaps in
    // its native kernel, and its batch entry serves whole chunks).
    auto job = std::make_shared<MapJob>();
    TieredUnary tiered = tieredUnary(ring, p.registry());
    job->fn = tiered.fn;
    job->source = list;
    workers::ParallelOptions parOptions;
    parOptions.maxWorkers = workerCount;
    parOptions.distribution = opts.distribution;
    parOptions.chunkSize = opts.chunkSize;
    parOptions.maxRetries = opts.maxRetries;
    parOptions.deadlineSeconds = opts.deadlineSeconds;
    parOptions.allowDegrade = opts.allowDegrade;
    // Chain the op under the process's own token (null when the process
    // has none): stopping the script — or shedding the tenant that owns
    // it — cancels the in-flight pool work at its next chunk boundary.
    parOptions.cancel = p.cancelToken();
    try {
      job->parallel = std::make_shared<workers::Parallel>(list, parOptions);
      job->parallel->map(job->fn, tiered.batch);
    } catch (const SubstrateError&) {
      // Clone-in refused (transfer fault): fall back before launch.
      if (!opts.allowDegrade) throw;
      degradeMapJob(*job);
    }
    c.state = job;
    if (job->parallel) {
      // Where Listing 2 pushed a yield context and re-polled, park: the
      // handler frame stays on top and is re-entered when the finishing
      // worker fires the wake (inline-immediately if already resolved).
      job->parallel->onComplete(p.parkOnCompletion(c));
    } else {
      p.retryAfterYield(c);  // degraded before launch: cooperative slices
    }
    return;
  }
  // Re-entered after the wake (the operation is resolved) or on a
  // fallback slice: return the resulting array.
  auto job = std::static_pointer_cast<MapJob>(c.state);
  if (job->parallel) {
    if (job->parallel->failed()) {
      const ErrorClass errorClass = job->parallel->errorClass();
      if (errorClass != ErrorClass::Substrate || !opts.allowDegrade) {
        failBlock("parallel map", errorClass,
                  job->parallel->errorMessage());
      }
      // Retries exhausted on the substrate: collapse and restart
      // sequentially — the handler still owns the pristine input list.
      degradeMapJob(*job);
      p.retryAfterYield(c);
      return;
    }
    try {
      p.returnValue(Value(List::make(job->parallel->takeData())));
    } catch (const SubstrateError&) {
      // Clone-out refused (transfer fault) on an otherwise clean run.
      if (!opts.allowDegrade) throw;
      degradeMapJob(*job);
      p.retryAfterYield(c);
    }
    return;
  }
  // Sequential fallback: one cooperative slice of the list per frame.
  // User-script errors from fn propagate as usual (they are
  // deterministic — the parallel path would have hit them too).
  const size_t n = job->source->length();
  const size_t end = std::min(n, job->next + kFallbackSliceItems);
  job->out.reserve(n);
  for (; job->next < end; ++job->next) {
    job->out.push_back(job->fn(job->source->item(job->next + 1)));
  }
  if (job->next < n) {
    p.retryAfterYield(c);
    return;
  }
  p.returnValue(Value(List::make(std::move(job->out))));
}

// ---------------------------------------------------------------------------
// doParallelForEach — clones pouring in parallel (Fig. 8–10).
// ---------------------------------------------------------------------------
void parallelForEachHandler(Process& p, Context& c) {
  // Non-strict: evaluate var name, list, and the optional parallelism slot.
  if (c.inputs.size() < 3) {
    p.evalInput(c, c.inputs.size());
    return;
  }

  // Sequential mode: the parallelism slot is collapsed (Fig. 8b). Behave
  // exactly like forEach: the single sprite serves every item in turn.
  // `phase == 2` marks a degraded entry — the host could not launch
  // sibling processes, so the parallel request collapsed to this path
  // (same semantics, one server) and the downgrade was recorded.
  if (c.isCollapsed(2) || c.phase == 2 || c.counter > 0) {
    const ListPtr& list = c.inputs[1].asList();
    if (static_cast<size_t>(c.counter) >= list->length()) {
      p.finishCommand();
      return;
    }
    if (c.phase == 1) {
      c.phase = 0;
      p.retryAfterYield(c);
      return;
    }
    ++c.counter;
    c.phase = 1;
    auto frame = blocks::Environment::make(c.env);
    frame->declare(c.inputs[0].asText(),
                   list->item(static_cast<size_t>(c.counter)));
    p.pushScript(c.block->input(3).script().get(), frame);
    return;
  }

  // Parallel mode.
  if (!c.state) {
    const std::string varName = c.inputs[0].asText();
    const ListPtr& list = c.inputs[1].asList();
    const size_t n = list->length();
    if (n == 0) {
      p.finishCommand();
      return;
    }
    // "If empty, it defaults to the length of the input list."
    size_t clones = c.inputs[2].isNothing()
                        ? n
                        : static_cast<size_t>(std::max<long long>(
                              1, c.inputs[2].asInteger()));
    clones = std::min(clones, n);

    auto job = std::make_shared<ForEachJob>();
    for (size_t j = 0; j < clones; ++j) {
      // Round-robin distribution: clone j serves items j+1, j+1+k, …
      auto chunk = List::make();
      for (size_t i = j + 1; i <= n; i += clones) {
        chunk->add(list->item(i));
      }
      // The system spawns clones of the sprite to serve the items. A null
      // clone only degrades the *visualization* — the chunk still runs as
      // its own cooperative process on the original sprite.
      vm::SpriteApi* clone = p.host().makeClone(p.sprite(), "");
      if (clone) job->clones.push_back(clone);

      // Driver: run the body for each item of the chunk, then remove the
      // clone.
      auto driver = Block::make(
          "__foreachDriver",
          {Input(Value(varName)), Input(Value(chunk)),
           Input(c.block->input(3).script())});
      auto script = blocks::Script::make(
          {driver, Block::make("removeClone")});
      auto env = blocks::Environment::make(c.env);
      try {
        job->statuses.push_back(
            p.host().launchScript(script, env, clone ? clone : p.sprite()));
      } catch (const std::exception&) {
        // The host cannot run sibling processes at all (headless
        // NullHost). Only the first launch can degrade — later chunks are
        // already running and a sequential restart would double-serve
        // their items. Collapse to the single-server sequential mode
        // (phase == 2 marks the degraded entry) and record the downgrade.
        if (j != 0) throw;
        if (clone) p.host().removeClone(clone);
        workers::substrateStats().bump(&workers::SubstrateStats::downgrades);
        c.phase = 2;
        p.retryAfterYield(c);
        return;
      }
    }
    c.state = job;
    p.retryAfterYield(c);
    return;
  }

  // Poll the clone processes.
  auto job = std::static_pointer_cast<ForEachJob>(c.state);
  for (const auto& status : job->statuses) {
    if (!status->done) {
      p.retryAfterYield(c);
      return;
    }
  }
  for (const auto& status : job->statuses) {
    if (status->errored) {
      throw Error("parallel forEach clone failed: " + status->error);
    }
  }
  p.finishCommand();
}

// ---------------------------------------------------------------------------
// reportMapReduce — Fig. 11/13. The Job is a completion-chained pipeline
// on the shared pool (map+shuffle stage → sort+reduce stage → merge, each
// stage launched by its predecessor's completion callback); the handler
// parks on the job's completion instead of polling it per frame. The
// engine owns its degradation (sequential rerun on transient substrate
// failure, inline drain if the pool refuses a stage), so the handler only
// relays the typed failure.
// ---------------------------------------------------------------------------
void mapReduceHandler(Process& p, Context& c, ParallelBlockOptions opts) {
  if (!c.state) {
    const RingPtr& mapRing = c.inputs[0].asRing();
    const RingPtr& reduceRing = c.inputs[1].asRing();
    const ListPtr& list = c.inputs[2].asList();
    TieredUnary tiered = tieredUnary(mapRing, p.registry());
    mr::MapFn mapFn = tiered.fn;
    mr::ReduceFn reduceFn = tieredListReduce(reduceRing, p.registry());
    mr::Options mrOptions;
    mrOptions.workers = p.host().maxWorkers();
    mrOptions.maxRetries = opts.maxRetries;
    mrOptions.deadlineSeconds = opts.deadlineSeconds;
    mrOptions.allowDegrade = opts.allowDegrade;
    mrOptions.mapBatch = tiered.batch;
    // Same chaining as parallelMap: the pipeline dies with the process.
    mrOptions.cancel = p.cancelToken();
    auto job = std::make_shared<mr::Job>(list, mapFn, reduceFn, mrOptions);
    c.state = job;
    job->onComplete(p.parkOnCompletion(c));
    return;
  }
  // Re-entered after the wake: the pipeline is settled.
  auto job = std::static_pointer_cast<mr::Job>(c.state);
  if (job->failed()) {
    failBlock("mapReduce", job->errorClass(), job->errorMessage());
  }
  p.returnValue(Value(job->result()));
}

// ---------------------------------------------------------------------------
// launchParallelMap / launchMapReduce / reportAwait — the completion model
// made first-class. A launch block builds the substrate operation, wires
// its completion callback to resolve/reject a Future, and returns the
// future *immediately*: the script keeps computing while the workers run.
// `await` joins: identity on plain values, the resolved value on a
// resolved future, a rethrow of the original typed error on a failed one,
// and a park on the future's settlement when still pending.
//
// Launch blocks never throw and never degrade: any failure — purity of
// the ring, a refused pool launch, retries exhausted, a cancelled owner —
// settles the future with its typed error and surfaces at the join. The
// owning process adopts the future, so terminating or failing the process
// cancels the in-flight operation through the future's cancel hook.
// ---------------------------------------------------------------------------
void launchParallelMapHandler(Process& p, Context& c,
                              ParallelBlockOptions opts) {
  auto fut = blocks::Future::make();
  try {
    const RingPtr& ring = c.inputs[0].asRing();
    const ListPtr& list = c.inputs[1].asList();
    size_t workerCount = slotIsDefault(c, 2)
                             ? p.host().maxWorkers()
                             : static_cast<size_t>(std::max<long long>(
                                   1, c.inputs[2].asInteger()));
    TieredUnary tiered = tieredUnary(ring, p.registry());
    workers::MapFn fn = tiered.fn;
    workers::ParallelOptions parOptions;
    parOptions.maxWorkers = workerCount;
    parOptions.distribution = opts.distribution;
    parOptions.chunkSize = opts.chunkSize;
    parOptions.maxRetries = opts.maxRetries;
    parOptions.deadlineSeconds = opts.deadlineSeconds;
    // No sequential fallback behind a future: the caller chose deferred
    // observation, so failures stay typed and surface at the await.
    parOptions.allowDegrade = false;
    parOptions.cancel = p.cancelToken();
    auto parallel = std::make_shared<workers::Parallel>(list, parOptions);
    parallel->map(fn, tiered.batch);
    // The fulfillment callback runs on the worker that finishes the last
    // chunk. It owns the Parallel (the closure keeps it alive until the
    // settle) and charges clone-out/cancellation accounting to the
    // launching tenant's stats scope, not the worker's.
    workers::SubstrateStats* stats = &workers::substrateStats();
    parallel->onComplete([parallel, fut, stats]() {
      workers::StatsScope scope(*stats);
      try {
        fut->resolve(Value(List::make(parallel->takeData())));
      } catch (...) {
        fut->reject(std::current_exception());
      }
    });
    fut->setCancelHook([parallel](const std::string& reason) {
      parallel->cancel(reason);
    });
  } catch (...) {
    fut->reject(std::current_exception());
  }
  p.adoptFuture(fut);
  p.returnValue(Value(fut));
}

void launchMapReduceHandler(Process& p, Context& c,
                            ParallelBlockOptions opts) {
  auto fut = blocks::Future::make();
  try {
    const RingPtr& mapRing = c.inputs[0].asRing();
    const RingPtr& reduceRing = c.inputs[1].asRing();
    const ListPtr& list = c.inputs[2].asList();
    TieredUnary tiered = tieredUnary(mapRing, p.registry());
    mr::MapFn mapFn = tiered.fn;
    mr::ReduceFn reduceFn = tieredListReduce(reduceRing, p.registry());
    mr::Options mrOptions;
    mrOptions.workers = p.host().maxWorkers();
    mrOptions.maxRetries = opts.maxRetries;
    mrOptions.deadlineSeconds = opts.deadlineSeconds;
    mrOptions.mapBatch = tiered.batch;
    mrOptions.allowDegrade = false;  // typed failures surface at the await
    mrOptions.cancel = p.cancelToken();
    auto job = std::make_shared<mr::Job>(list, mapFn, reduceFn, mrOptions);
    workers::SubstrateStats* stats = &workers::substrateStats();
    job->onComplete([job, fut, stats]() {
      workers::StatsScope scope(*stats);
      if (job->failed()) {
        fut->reject(job->error());
      } else {
        fut->resolve(Value(job->result()));
      }
    });
    fut->setCancelHook(
        [job](const std::string& reason) { job->cancel(reason); });
  } catch (...) {
    fut->reject(std::current_exception());
  }
  p.adoptFuture(fut);
  p.returnValue(Value(fut));
}

void awaitHandler(Process& p, Context& c) {
  const Value& input = c.inputs[0];
  if (!input.isFuture()) {
    // The paper's blocks report plain values; awaiting one is the
    // identity, so scripts can be written launch-agnostically.
    p.returnValue(input);
    return;
  }
  const blocks::FuturePtr& fut = input.asFuture();
  switch (fut->state()) {
    case blocks::Future::State::Resolved:
      p.returnValue(fut->value());
      return;
    case blocks::Future::State::Failed:
      // Rethrow the original exception: a TypeError from the mapped ring
      // is a TypeError at the join; a deadline trip is a TimeoutError.
      std::rethrow_exception(fut->error());
    case blocks::Future::State::Pending:
      // Park on the settlement; the handler frame stays on top and is
      // re-entered (now settled) when the completion fires the wake.
      fut->onSettle(p.parkOnCompletion(c));
      return;
  }
}

}  // namespace

void registerParallelPrimitives(vm::PrimitiveTable& table,
                                ParallelBlockOptions options) {
  table.add("reportParallelMap", [options](Process& p, Context& c) {
    parallelMapHandler(p, c, options);
  });
  table.add("doParallelForEach", parallelForEachHandler);
  table.add("reportMapReduce", [options](Process& p, Context& c) {
    mapReduceHandler(p, c, options);
  });
  table.add("launchParallelMap", [options](Process& p, Context& c) {
    launchParallelMapHandler(p, c, options);
  });
  table.add("launchMapReduce", [options](Process& p, Context& c) {
    launchMapReduceHandler(p, c, options);
  });
  table.add("reportAwait", awaitHandler);
  // The per-clone chunk driver shares doForEach's iteration logic.
  const vm::Handler* forEach = table.find("doForEach");
  if (!forEach) {
    throw BlockError(
        "registerParallelPrimitives requires the standard palette");
  }
  table.add("__foreachDriver", *forEach);
}

vm::PrimitiveTable fullPrimitiveTable(ParallelBlockOptions options) {
  vm::PrimitiveTable table = vm::PrimitiveTable::standard();
  registerParallelPrimitives(table, options);
  return table;
}

}  // namespace psnap::core
