#include "mapreduce/engine.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace psnap::mr {

using blocks::List;
using blocks::ListPtr;
using blocks::Value;

namespace {

bool looksNumeric(const Value& v) {
  if (v.isNumber()) return true;
  if (!v.isText()) return false;
  double out;
  return strings::parseNumber(v.asText(), out);
}

bool keyLess(const Value& a, const Value& b) {
  if (looksNumeric(a) && looksNumeric(b)) return a.asNumber() < b.asNumber();
  return strings::toLower(a.display()) < strings::toLower(b.display());
}

/// Normalize one map result into a [key, value] pair.
Value toPair(const Value& item, const Value& mapped) {
  if (mapped.isList() && mapped.asList()->length() == 2) {
    return mapped;  // explicit [key, value]
  }
  auto pair = List::make();
  pair->add(item);
  pair->add(mapped);
  return Value(pair);
}

}  // namespace

ReduceFn identityReduce() {
  return [](const ListPtr& values) { return Value(values); };
}

ListPtr run(const ListPtr& input, const MapFn& mapFn,
            const ReduceFn& reduceFn, const Options& options, Stats* stats) {
  if (!input) throw Error("mapReduce: null input list");
  Stats local;
  local.inputItems = input->length();

  // --- map phase -------------------------------------------------------------
  std::vector<Value> pairs;
  pairs.reserve(input->length());
  if (options.sequential) {
    for (const Value& item : input->items()) {
      pairs.push_back(toPair(item, mapFn(item)));
    }
    local.mapMakespan = input->length();
  } else {
    workers::Parallel job(input->items(),
                          {.maxWorkers = options.workers});
    job.map([mapFn](const Value& item) { return toPair(item, mapFn(item)); });
    pairs = job.data();  // waits; throws on worker error
    local.mapMakespan = job.virtualMakespan();
  }

  // --- shuffle: sort by key ----------------------------------------------------
  for (const Value& pair : pairs) {
    if (!pair.isList() || pair.asList()->length() != 2) {
      throw Error("mapReduce: map result is not a [key, value] pair");
    }
  }
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const Value& a, const Value& b) {
                     return keyLess(a.asList()->item(1),
                                    b.asList()->item(1));
                   });

  // --- group consecutive equal keys ---------------------------------------------
  std::vector<Value> groups;  // each: [key, valuesList]
  for (const Value& pair : pairs) {
    const Value& key = pair.asList()->item(1);
    const Value& value = pair.asList()->item(2);
    if (!groups.empty() &&
        groups.back().asList()->item(1).equals(key)) {
      groups.back().asList()->item(2).asList()->add(value);
    } else {
      auto group = List::make();
      group->add(key);
      group->add(Value(List::make({value})));
      groups.push_back(Value(group));
    }
  }
  local.distinctKeys = groups.size();

  // --- reduce phase ---------------------------------------------------------------
  auto reduceGroup = [reduceFn](const Value& group) {
    auto out = List::make();
    out->add(group.asList()->item(1));
    out->add(reduceFn(group.asList()->item(2).asList()));
    return Value(out);
  };
  std::vector<Value> reduced;
  if (options.sequential) {
    reduced.reserve(groups.size());
    for (const Value& group : groups) reduced.push_back(reduceGroup(group));
    local.reduceMakespan = groups.size();
  } else {
    workers::Parallel job(groups, {.maxWorkers = options.workers});
    job.map(reduceGroup);
    reduced = job.data();
    local.reduceMakespan = job.virtualMakespan();
  }

  if (stats) *stats = local;
  return List::make(std::move(reduced));
}

Job::Job(ListPtr input, MapFn mapFn, ReduceFn reduceFn, Options options) {
  thread_ = std::thread([this, input = std::move(input),
                         mapFn = std::move(mapFn),
                         reduceFn = std::move(reduceFn), options] {
    try {
      result_ = run(input, mapFn, reduceFn, options, &stats_);
    } catch (const std::exception& e) {
      error_ = e.what();
      failed_.store(true);
    } catch (...) {
      error_ = "unknown mapReduce error";
      failed_.store(true);
    }
    done_.store(true);
  });
}

Job::~Job() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace psnap::mr
