#include "mapreduce/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>

#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/strings.hpp"
#include "workers/stats.hpp"
#include "workers/worker_pool.hpp"

namespace psnap::mr {

using blocks::List;
using blocks::ListPtr;
using blocks::Value;
using workers::TaskGroup;
using workers::WorkerPool;

namespace {

/// Bounded deterministic backoff before a stage-task retry: 100us, 200us,
/// 400us, … capped at ~2ms — the same curve as Parallel's chunk retries,
/// and fixed (no jitter) for the same reproducible-chaos reason.
void stageRetryBackoff(int attempt) {
  const int64_t micros =
      std::min<int64_t>(int64_t{100} << std::min(attempt - 1, 8), 2000);
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

// A pair's sort key, computed once during the shuffle instead of once per
// comparison (the seed re-ran parseNumber/toLower/display inside the
// stable_sort comparator). `shard` is the key's hash bucket; keys that
// the comparator treats as equivalent always share a shard, which is what
// makes the sharded grouping emit the same order as a global sort (the
// ordering proof is in DESIGN.md, "Executor architecture").
//
// The textual rank is not materialized for text keys: `key` is a cheap
// COW handle whose bytes are compared case-insensitively on the fly
// (strings::compareIgnoreCase orders exactly like the seed's
// toLower-then-< over unsigned bytes), and the shard hash comes from the
// cached lowered hash on the shared text rep. Only non-text keys still
// build a folded display string.
struct SortKey {
  Value key;           // refcount-bump copy keeps the text bytes alive
  double num = 0;
  size_t shard = 0;
  bool numeric = false;
  std::string folded;  // toLower(display), only for non-text keys
};

std::string_view rankOf(const SortKey& k) {
  return k.key.isText() ? k.key.textView() : std::string_view(k.folded);
}

SortKey makeKey(const Value& key, size_t shardCount) {
  SortKey k;
  k.numeric = key.numericValue(k.num);
  // The textual rank stays reachable even for numeric keys — a numeric
  // key compared against a non-numeric one falls back to text order.
  if (key.isText()) {
    k.key = key;
  } else {
    k.folded = strings::toLower(key.display());
  }
  uint64_t hash;
  if (k.numeric) {
    hash = std::hash<double>{}(k.num);
  } else if (key.isText()) {
    hash = key.loweredHash();  // cached on the shared rep for long text
  } else {
    hash = strings::hashLowered(k.folded);
  }
  k.shard = hash % shardCount;
  return k;
}

/// Exactly the seed comparator's semantics, over precomputed ranks.
bool keyLess(const SortKey& a, const SortKey& b) {
  if (a.numeric && b.numeric) return a.num < b.num;
  return strings::compareIgnoreCase(rankOf(a), rankOf(b)) < 0;
}

/// Normalize one map result into a [key, value] pair. Runs inside the
/// map phase (on workers), so malformed pairs surface as map errors —
/// the seed's separate serial validation pass over all pairs is gone.
Value toPair(const Value& item, const Value& mapped) {
  if (mapped.isList() && mapped.asList()->length() == 2) {
    const Value& key = mapped.asList()->item(1);
    if (!key.isTransferable()) {
      throw Error(
          "mapReduce: explicit [key, value] pair has a non-transferable "
          "key of kind '" +
          std::string(blocks::valueKindName(key.kind())) +
          "'; keys must be cloneable (no rings)");
    }
    return mapped;  // explicit [key, value]
  }
  auto pair = List::make();
  pair->add(item);
  pair->add(mapped);
  return Value(pair);
}

/// The shuffle: sort pairs by key and group equal keys, sharded.
///
///   A. slice tasks precompute every pair's SortKey and bin pair indices
///      by shard (bins stay in ascending index order);
///   B. shard tasks stable-sort their shard's indices by key and group
///      adjacent equal keys into [key, valuesList] entries;
///   C. the caller merges the per-shard sorted group lists; keys never
///      tie across shards (equivalent keys share a shard by
///      construction), so this is a strict W-way merge.
///
/// Output order is byte-identical to the seed's global
/// stable_sort + adjacent grouping. Small inputs run single-sharded on
/// the calling thread — same code path with shardCount = 1.
///
/// Shuffle tasks append into shared per-slice bins, so they are NOT
/// retryable in place (a rerun would double-bin); a substrate failure
/// here propagates out and run()'s outer ladder rung re-executes the
/// whole pipeline sequentially. The task-throw fault point therefore
/// wraps the *task* bodies, never the sequential shardCount == 1 path.
std::vector<Value> shuffleAndGroup(const std::vector<Value>& pairs,
                                   size_t width, bool onCaller,
                                   const CancelTokenPtr& token) {
  const size_t n = pairs.size();
  std::vector<Value> out;
  if (n == 0) return out;
  const size_t shardCount =
      (onCaller || n < 256) ? 1 : std::max<size_t>(1, width);

  // --- A: precompute keys, bin indices by shard ---------------------------
  std::vector<SortKey> keys(n);
  // binned[slice][shard]: pair indices, ascending within each bin.
  std::vector<std::vector<std::vector<uint32_t>>> binned(
      shardCount,
      std::vector<std::vector<uint32_t>>(shardCount));
  const size_t per = (n + shardCount - 1) / shardCount;
  auto keySlice = [&](size_t slice) {
    const size_t begin = slice * per;
    const size_t end = std::min(begin + per, n);
    for (size_t i = begin; i < end; ++i) {
      keys[i] = makeKey(pairs[i].asList()->item(1), shardCount);
      binned[slice][keys[i].shard].push_back(uint32_t(i));
    }
  };

  // --- B: per shard, sort + group -----------------------------------------
  std::vector<std::vector<Value>> groups(shardCount);
  std::vector<std::vector<const SortKey*>> heads(shardCount);
  auto groupShard = [&](size_t shard) {
    std::vector<uint32_t> indices;
    for (size_t slice = 0; slice < shardCount; ++slice) {
      const auto& bin = binned[slice][shard];
      indices.insert(indices.end(), bin.begin(), bin.end());
    }
    // Slices cover ascending contiguous ranges, so `indices` is already
    // ascending; stable_sort therefore keeps equal keys in original pair
    // order — the stability the seed's global sort provided.
    std::stable_sort(indices.begin(), indices.end(),
                     [&keys](uint32_t a, uint32_t b) {
                       return keyLess(keys[a], keys[b]);
                     });
    for (uint32_t index : indices) {
      const Value& key = pairs[index].asList()->item(1);
      const Value& value = pairs[index].asList()->item(2);
      if (!groups[shard].empty() &&
          groups[shard].back().asList()->item(1).equals(key)) {
        groups[shard].back().asList()->item(2).asList()->add(value);
      } else {
        auto group = List::make();
        group->add(key);
        group->add(Value(List::make({value})));
        groups[shard].push_back(Value(group));
        heads[shard].push_back(&keys[index]);
      }
    }
  };

  if (shardCount == 1) {
    keySlice(0);
    groupShard(0);
    return std::move(groups[0]);
  }

  WorkerPool& pool = WorkerPool::shared();
  {
    std::vector<TaskGroup::Task> tasks;
    tasks.reserve(shardCount);
    for (size_t s = 0; s < shardCount; ++s) {
      tasks.push_back([&keySlice](size_t slice) {
        fault::inject(fault::Point::TaskThrow);
        keySlice(slice);
      });
    }
    auto phase = std::make_shared<TaskGroup>(std::move(tasks), token);
    pool.submit(phase);
    phase->wait();
    phase->rethrowIfError();
  }
  {
    std::vector<TaskGroup::Task> tasks;
    tasks.reserve(shardCount);
    for (size_t s = 0; s < shardCount; ++s) {
      tasks.push_back([&groupShard](size_t shard) {
        fault::inject(fault::Point::TaskThrow);
        groupShard(shard);
      });
    }
    auto phase = std::make_shared<TaskGroup>(std::move(tasks), token);
    pool.submit(phase);
    phase->wait();
    phase->rethrowIfError();
  }

  // --- C: merge the sorted shard group lists ------------------------------
  size_t total = 0;
  std::vector<size_t> cursor(shardCount, 0);
  for (const auto& g : groups) total += g.size();
  out.reserve(total);
  while (out.size() < total) {
    size_t best = shardCount;
    for (size_t s = 0; s < shardCount; ++s) {
      if (cursor[s] >= groups[s].size()) continue;
      if (best == shardCount ||
          keyLess(*heads[s][cursor[s]], *heads[best][cursor[best]])) {
        best = s;
      }
    }
    out.push_back(std::move(groups[best][cursor[best]]));
    ++cursor[best];
  }
  return out;
}

/// One pipeline pass, either parallel or sequential. Throws on failure
/// (with the original exception type); run() owns the degradation
/// decision.
ListPtr runOnce(const ListPtr& input, const MapFn& mapFn,
                const ReduceFn& reduceFn, const Options& options,
                bool sequential, const CancelTokenPtr& token,
                Stats& local) {
  const size_t width = options.workers == 0 ? 4 : options.workers;

  workers::ParallelOptions phaseOptions;
  phaseOptions.maxWorkers = options.workers;
  phaseOptions.maxRetries = options.maxRetries;
  // The pipeline deadline lives in `token`; the phase Parallels must not
  // degrade internally (this function owns the outer ladder rung).
  phaseOptions.allowDegrade = false;
  phaseOptions.cancel = token;

  // --- map phase -------------------------------------------------------------
  std::vector<Value> pairs;
  if (sequential) {
    pairs.reserve(input->length());
    for (const Value& item : input->items()) {
      pairs.push_back(toPair(item, mapFn(item)));
    }
    local.mapMakespan = input->length();
  } else {
    workers::Parallel job(input->items(), phaseOptions);
    job.map([mapFn](const Value& item) { return toPair(item, mapFn(item)); });
    pairs = job.takeData();  // waits; throws on worker error
    local.mapMakespan = job.virtualMakespan();
  }

  // --- shuffle: sharded sort-by-key + grouping --------------------------------
  std::vector<Value> groups =
      shuffleAndGroup(pairs, width, sequential, token);
  local.distinctKeys = groups.size();

  // --- reduce phase ---------------------------------------------------------------
  auto reduceGroup = [reduceFn](const Value& group) {
    auto out = List::make();
    out->add(group.asList()->item(1));
    out->add(reduceFn(group.asList()->item(2).asList()));
    return Value(out);
  };
  std::vector<Value> reduced;
  if (sequential) {
    reduced.reserve(groups.size());
    for (const Value& group : groups) reduced.push_back(reduceGroup(group));
    local.reduceMakespan = groups.size();
  } else {
    workers::Parallel job(groups, phaseOptions);
    job.map(reduceGroup);
    reduced = job.takeData();
    local.reduceMakespan = job.virtualMakespan();
  }

  return List::make(std::move(reduced));
}

}  // namespace

ReduceFn identityReduce() {
  return [](const ListPtr& values) { return Value(values); };
}

ListPtr run(const ListPtr& input, const MapFn& mapFn,
            const ReduceFn& reduceFn, const Options& options, Stats* stats) {
  if (!input) throw Error("mapReduce: null input list");
  Stats local;
  local.inputItems = input->length();

  // One token spans the whole pipeline, so map, shuffle and reduce share
  // a single wall-clock budget instead of each phase getting its own.
  CancelTokenPtr token;
  if (options.deadlineSeconds > 0) {
    token = CancelToken::withDeadline(options.deadlineSeconds,
                                      options.cancel);
  } else {
    token = options.cancel;  // may be null
  }

  ListPtr out;
  if (options.sequential) {
    out = runOnce(input, mapFn, reduceFn, options, true, token, local);
  } else {
    try {
      out = runOnce(input, mapFn, reduceFn, options, false, token, local);
    } catch (...) {
      std::exception_ptr error = std::current_exception();
      // Only a *transient* substrate failure earns the sequential rerun.
      // Timeout/Cancelled must not (a rerun after a blown deadline only
      // blows it further) and user-script errors are deterministic.
      if (!options.allowDegrade ||
          classifyError(error) != ErrorClass::Substrate) {
        std::rethrow_exception(error);
      }
      workers::substrateStats().bump(&workers::SubstrateStats::downgrades);
      local = Stats{};
      local.inputItems = input->length();
      local.degraded = true;
      out = runOnce(input, mapFn, reduceFn, options, true, token, local);
    }
  }

  if (stats) *stats = local;
  return out;
}

// --- Job: the completion-chained pipeline -----------------------------------

struct Job::Pipeline {
  ListPtr input;
  MapFn mapFn;
  ReduceFn reduceFn;
  Options options;
  workers::SubstrateStats* stats = nullptr;  // the constructing tenant's
  size_t n = 0;
  size_t shardCount = 1;

  // Stage 1 outputs: slot i is written by exactly one slice task.
  std::vector<Value> pairs;
  std::vector<SortKey> keys;
  // binned[slice][shard]: pair indices, ascending within each bin.
  std::vector<std::vector<std::vector<uint32_t>>> binned;

  // Stage 2 outputs: per shard, sorted [key, reduced] pairs + head keys.
  std::vector<std::vector<Value>> reduced;
  std::vector<std::vector<const SortKey*>> heads;

  std::shared_ptr<TaskGroup> stage1;
  std::shared_ptr<TaskGroup> stage2;
};

Job::Job(ListPtr input, MapFn mapFn, ReduceFn reduceFn, Options options)
    : pipe_(std::make_unique<Pipeline>()) {
  Pipeline& p = *pipe_;
  p.input = std::move(input);
  p.mapFn = std::move(mapFn);
  p.reduceFn = std::move(reduceFn);
  p.options = std::move(options);
  p.stats = &workers::substrateStats();
  // One token spans the whole pipeline (map, shuffle and reduce share a
  // single wall-clock budget) and doubles as the cancel() handle, so it
  // exists even without a deadline or parent.
  token_ = p.options.deadlineSeconds > 0
               ? CancelToken::withDeadline(p.options.deadlineSeconds,
                                           p.options.cancel)
               : CancelToken::create(p.options.cancel);
  if (!p.input) {
    settleError(std::make_exception_ptr(Error("mapReduce: null input list")));
    return;
  }
  p.n = p.input->length();
  stats_.inputItems = p.n;
  if (p.n == 0) {
    result_ = List::make();
    settleOk();
    return;
  }
  const size_t width = p.options.workers == 0 ? 4 : p.options.workers;
  // Same small-input threshold as shuffleAndGroup: a single shard keeps
  // the chain's overhead off short lists without changing the output.
  p.shardCount = p.n < 256 ? 1 : std::max<size_t>(1, width);
  p.pairs.resize(p.n);
  p.keys.resize(p.n);
  p.binned.assign(p.shardCount,
                  std::vector<std::vector<uint32_t>>(p.shardCount));
  p.reduced.resize(p.shardCount);
  p.heads.resize(p.shardCount);
  startStage1();
}

// Every path out of the chain settles the latch exactly once, as its last
// touch of the Job; ~Job's latch wait is therefore a full join.
Job::~Job() { latch_.wait(); }

void Job::onComplete(workers::CompletionLatch::Callback cb) {
  latch_.onSettle(std::move(cb));
}

void Job::cancel(const std::string& reason) { token_->cancel(reason); }

void Job::startStage1() {
  Pipeline& p = *pipe_;
  const size_t per = (p.n + p.shardCount - 1) / p.shardCount;
  stats_.mapMakespan = std::min(per, p.n);
  std::vector<TaskGroup::Task> tasks;
  tasks.reserve(p.shardCount);
  for (size_t s = 0; s < p.shardCount; ++s) {
    tasks.push_back([this, per](size_t slice) {
      Pipeline& p = *pipe_;
      const size_t begin = slice * per;
      const size_t end = std::min(begin + per, p.n);
      // Retry rung: a transient substrate fault restarts the slice from
      // scratch (mapFn is pure, pairs/keys slots are overwritten, and the
      // bins below are owned by this slice alone — clearing them makes
      // the restart exact). Only after retries are exhausted does the
      // throw fail the group and reach the degrade rung.
      int attempt = 0;
      while (true) {
        try {
          for (auto& bin : p.binned[slice]) bin.clear();
          // Native chunk path: map the whole slice through the compiled
          // kernel on a scratch copy (the pairs are keyed by the ORIGINAL
          // items, which p.input still holds). A false return — kernel
          // not installed, unmarshalable element, element error — falls
          // through to the per-item loop with nothing written.
          std::vector<Value> mapped;
          bool batched = false;
          if (p.options.mapBatch && end > begin) {
            mapped.reserve(end - begin);
            for (size_t i = begin; i < end; ++i) {
              mapped.push_back(p.input->item(i + 1));
            }
            batched = p.options.mapBatch(mapped.data(), mapped.size());
          }
          for (size_t i = begin; i < end; ++i) {
            if (!batched) fault::inject(fault::Point::TaskThrow);
            if ((i - begin) % 512 == 511) token_->checkpoint();
            const Value& item = p.input->item(i + 1);
            p.pairs[i] = toPair(item, batched ? mapped[i - begin]
                                              : p.mapFn(item));
            p.keys[i] = makeKey(p.pairs[i].asList()->item(1), p.shardCount);
            p.binned[slice][p.keys[i].shard].push_back(uint32_t(i));
          }
          return;
        } catch (...) {
          std::exception_ptr error = std::current_exception();
          if (!isRetryableClass(classifyError(error)) ||
              attempt >= p.options.maxRetries) {
            std::rethrow_exception(error);
          }
          ++attempt;
          p.stats->bump(&workers::SubstrateStats::retries);
          stageRetryBackoff(attempt);
        }
      }
    });
  }
  p.stage1 = std::make_shared<TaskGroup>(std::move(tasks), token_);
  submitStage(p.stage1, [this] { stage1Done(); });
}

void Job::stage1Done() {
  Pipeline& p = *pipe_;
  std::exception_ptr error = p.stage1->error();
  if (!error && token_->cancelled()) {
    try {
      token_->checkpoint();
    } catch (...) {
      error = std::current_exception();
    }
  }
  if (error) {
    failOrDegrade(error);
    return;
  }
  startStage2();
}

void Job::startStage2() {
  Pipeline& p = *pipe_;
  std::vector<TaskGroup::Task> tasks;
  tasks.reserve(p.shardCount);
  for (size_t s = 0; s < p.shardCount; ++s) {
    tasks.push_back([this](size_t shard) {
      Pipeline& p = *pipe_;
      // Retry rung, mirroring stage 1: everything below is task-local
      // until the final moves into p.reduced/p.heads, so a transient
      // substrate fault restarts the shard exactly.
      int attempt = 0;
      while (true) {
        try {
          fault::inject(fault::Point::TaskThrow);
          std::vector<uint32_t> indices;
          for (size_t slice = 0; slice < p.shardCount; ++slice) {
            const auto& bin = p.binned[slice][shard];
            indices.insert(indices.end(), bin.begin(), bin.end());
          }
          // Slices cover ascending contiguous ranges, so `indices` is
          // already ascending; stable_sort keeps equal keys in original
          // pair order — the stability a global sort would provide.
          std::stable_sort(indices.begin(), indices.end(),
                           [&p](uint32_t a, uint32_t b) {
                             return keyLess(p.keys[a], p.keys[b]);
                           });
          std::vector<Value> groups;
          std::vector<const SortKey*> heads;
          for (uint32_t index : indices) {
            const Value& key = p.pairs[index].asList()->item(1);
            const Value& value = p.pairs[index].asList()->item(2);
            if (!groups.empty() &&
                groups.back().asList()->item(1).equals(key)) {
              groups.back().asList()->item(2).asList()->add(value);
            } else {
              auto group = List::make();
              group->add(key);
              group->add(Value(List::make({value})));
              groups.push_back(Value(group));
              heads.push_back(&p.keys[index]);
            }
          }
          // Reduce each closed group in place — per-group reduction is
          // independent of how groups were formed, so fusing it here
          // leaves the output bytes unchanged.
          std::vector<Value> reduced;
          reduced.reserve(groups.size());
          for (size_t g = 0; g < groups.size(); ++g) {
            fault::inject(fault::Point::TaskThrow);
            if (g % 256 == 255) token_->checkpoint();
            auto out = List::make();
            out->add(groups[g].asList()->item(1));
            out->add(p.reduceFn(groups[g].asList()->item(2).asList()));
            reduced.push_back(Value(out));
          }
          p.reduced[shard] = std::move(reduced);
          p.heads[shard] = std::move(heads);
          return;
        } catch (...) {
          std::exception_ptr error = std::current_exception();
          if (!isRetryableClass(classifyError(error)) ||
              attempt >= p.options.maxRetries) {
            std::rethrow_exception(error);
          }
          ++attempt;
          p.stats->bump(&workers::SubstrateStats::retries);
          stageRetryBackoff(attempt);
        }
      }
    });
  }
  p.stage2 = std::make_shared<TaskGroup>(std::move(tasks), token_);
  submitStage(p.stage2, [this] { stage2Done(); });
}

void Job::stage2Done() {
  Pipeline& p = *pipe_;
  std::exception_ptr error = p.stage2->error();
  if (!error && token_->cancelled()) {
    try {
      token_->checkpoint();
    } catch (...) {
      error = std::current_exception();
    }
  }
  if (error) {
    failOrDegrade(error);
    return;
  }
  // Serial W-way merge of the per-shard sorted group lists; equivalent
  // keys share a shard by construction, so keys never tie across shards.
  size_t total = 0;
  uint64_t makespan = 0;
  for (const auto& shard : p.reduced) {
    total += shard.size();
    makespan = std::max<uint64_t>(makespan, shard.size());
  }
  stats_.distinctKeys = total;
  stats_.reduceMakespan = makespan;
  std::vector<Value> out;
  out.reserve(total);
  std::vector<size_t> cursor(p.shardCount, 0);
  while (out.size() < total) {
    size_t best = p.shardCount;
    for (size_t s = 0; s < p.shardCount; ++s) {
      if (cursor[s] >= p.reduced[s].size()) continue;
      if (best == p.shardCount ||
          keyLess(*p.heads[s][cursor[s]], *p.heads[best][cursor[best]])) {
        best = s;
      }
    }
    out.push_back(std::move(p.reduced[best][cursor[best]]));
    ++cursor[best];
  }
  result_ = List::make(std::move(out));
  settleOk();
}

void Job::submitStage(const std::shared_ptr<TaskGroup>& stage,
                      workers::CompletionLatch::Callback continuation) {
  try {
    WorkerPool::shared().submit(stage);
  } catch (const SubstrateError&) {
    // The pool cannot take the stage (stopped or saturated); the group is
    // untouched (submit is all-or-nothing). Drain it inline on this
    // thread — the constructing thread for stage 1, possibly a worker
    // for a later stage — or, with degradation forbidden, settle typed
    // (constructors do not throw; jobs fail).
    if (!pipe_->options.allowDegrade) {
      settleError(std::current_exception());
      return;
    }
    if (!degraded_.exchange(true, std::memory_order_acq_rel)) {
      pipe_->stats->bump(&workers::SubstrateStats::downgrades);
    }
    stage->onComplete(std::move(continuation));
    while (stage->runOne()) {
    }
    return;
  }
  // Registered after a successful submit so a refused stage never leaves
  // a dangling continuation; if the workers already finished the stage,
  // this fires the continuation right here.
  stage->onComplete(std::move(continuation));
}

void Job::failOrDegrade(std::exception_ptr error) {
  Pipeline& p = *pipe_;
  // Only a *transient* substrate failure earns the sequential rerun.
  // Timeout/Cancelled must not (a rerun after a blown deadline only blows
  // it further) and user-script errors are deterministic.
  if (!p.options.allowDegrade ||
      classifyError(error) != ErrorClass::Substrate) {
    settleError(error);
    return;
  }
  // Rerun sequentially on whichever thread observed the failure, under
  // the *same* token — the deadline does not restart. The rerun's
  // retries/downgrades belong to the constructing tenant.
  workers::StatsScope scope(*p.stats);
  if (!degraded_.exchange(true, std::memory_order_acq_rel)) {
    p.stats->bump(&workers::SubstrateStats::downgrades);
  }
  Stats local;
  local.inputItems = p.n;
  local.degraded = true;
  try {
    result_ = runOnce(p.input, p.mapFn, p.reduceFn, p.options, true, token_,
                      local);
    stats_ = local;
    settleOk();
  } catch (...) {
    settleError(std::current_exception());
  }
}

void Job::settleOk() {
  done_.store(true, std::memory_order_release);
  latch_.settle();
}

void Job::settleError(std::exception_ptr error) {
  errorPtr_ = error;
  errorClass_ = classifyError(error);
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    error_ = e.what();
  } catch (...) {
    error_ = "unknown mapReduce error";
  }
  failed_.store(true, std::memory_order_release);
  done_.store(true, std::memory_order_release);
  latch_.settle();
}

}  // namespace psnap::mr
