#include "mapreduce/engine.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>

#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/strings.hpp"
#include "workers/stats.hpp"
#include "workers/worker_pool.hpp"

namespace psnap::mr {

using blocks::List;
using blocks::ListPtr;
using blocks::Value;
using workers::TaskGroup;
using workers::WorkerPool;

namespace {

// A pair's sort key, computed once during the shuffle instead of once per
// comparison (the seed re-ran parseNumber/toLower/display inside the
// stable_sort comparator). `shard` is the key's hash bucket; keys that
// the comparator treats as equivalent always share a shard, which is what
// makes the sharded grouping emit the same order as a global sort (the
// ordering proof is in DESIGN.md, "Executor architecture").
//
// The textual rank is not materialized for text keys: `key` is a cheap
// COW handle whose bytes are compared case-insensitively on the fly
// (strings::compareIgnoreCase orders exactly like the seed's
// toLower-then-< over unsigned bytes), and the shard hash comes from the
// cached lowered hash on the shared text rep. Only non-text keys still
// build a folded display string.
struct SortKey {
  Value key;           // refcount-bump copy keeps the text bytes alive
  double num = 0;
  size_t shard = 0;
  bool numeric = false;
  std::string folded;  // toLower(display), only for non-text keys
};

std::string_view rankOf(const SortKey& k) {
  return k.key.isText() ? k.key.textView() : std::string_view(k.folded);
}

SortKey makeKey(const Value& key, size_t shardCount) {
  SortKey k;
  k.numeric = key.numericValue(k.num);
  // The textual rank stays reachable even for numeric keys — a numeric
  // key compared against a non-numeric one falls back to text order.
  if (key.isText()) {
    k.key = key;
  } else {
    k.folded = strings::toLower(key.display());
  }
  uint64_t hash;
  if (k.numeric) {
    hash = std::hash<double>{}(k.num);
  } else if (key.isText()) {
    hash = key.loweredHash();  // cached on the shared rep for long text
  } else {
    hash = strings::hashLowered(k.folded);
  }
  k.shard = hash % shardCount;
  return k;
}

/// Exactly the seed comparator's semantics, over precomputed ranks.
bool keyLess(const SortKey& a, const SortKey& b) {
  if (a.numeric && b.numeric) return a.num < b.num;
  return strings::compareIgnoreCase(rankOf(a), rankOf(b)) < 0;
}

/// Normalize one map result into a [key, value] pair. Runs inside the
/// map phase (on workers), so malformed pairs surface as map errors —
/// the seed's separate serial validation pass over all pairs is gone.
Value toPair(const Value& item, const Value& mapped) {
  if (mapped.isList() && mapped.asList()->length() == 2) {
    const Value& key = mapped.asList()->item(1);
    if (!key.isTransferable()) {
      throw Error(
          "mapReduce: explicit [key, value] pair has a non-transferable "
          "key of kind '" +
          std::string(blocks::valueKindName(key.kind())) +
          "'; keys must be cloneable (no rings)");
    }
    return mapped;  // explicit [key, value]
  }
  auto pair = List::make();
  pair->add(item);
  pair->add(mapped);
  return Value(pair);
}

/// The shuffle: sort pairs by key and group equal keys, sharded.
///
///   A. slice tasks precompute every pair's SortKey and bin pair indices
///      by shard (bins stay in ascending index order);
///   B. shard tasks stable-sort their shard's indices by key and group
///      adjacent equal keys into [key, valuesList] entries;
///   C. the caller merges the per-shard sorted group lists; keys never
///      tie across shards (equivalent keys share a shard by
///      construction), so this is a strict W-way merge.
///
/// Output order is byte-identical to the seed's global
/// stable_sort + adjacent grouping. Small inputs run single-sharded on
/// the calling thread — same code path with shardCount = 1.
///
/// Shuffle tasks append into shared per-slice bins, so they are NOT
/// retryable in place (a rerun would double-bin); a substrate failure
/// here propagates out and run()'s outer ladder rung re-executes the
/// whole pipeline sequentially. The task-throw fault point therefore
/// wraps the *task* bodies, never the sequential shardCount == 1 path.
std::vector<Value> shuffleAndGroup(const std::vector<Value>& pairs,
                                   size_t width, bool onCaller,
                                   const CancelTokenPtr& token) {
  const size_t n = pairs.size();
  std::vector<Value> out;
  if (n == 0) return out;
  const size_t shardCount =
      (onCaller || n < 256) ? 1 : std::max<size_t>(1, width);

  // --- A: precompute keys, bin indices by shard ---------------------------
  std::vector<SortKey> keys(n);
  // binned[slice][shard]: pair indices, ascending within each bin.
  std::vector<std::vector<std::vector<uint32_t>>> binned(
      shardCount,
      std::vector<std::vector<uint32_t>>(shardCount));
  const size_t per = (n + shardCount - 1) / shardCount;
  auto keySlice = [&](size_t slice) {
    const size_t begin = slice * per;
    const size_t end = std::min(begin + per, n);
    for (size_t i = begin; i < end; ++i) {
      keys[i] = makeKey(pairs[i].asList()->item(1), shardCount);
      binned[slice][keys[i].shard].push_back(uint32_t(i));
    }
  };

  // --- B: per shard, sort + group -----------------------------------------
  std::vector<std::vector<Value>> groups(shardCount);
  std::vector<std::vector<const SortKey*>> heads(shardCount);
  auto groupShard = [&](size_t shard) {
    std::vector<uint32_t> indices;
    for (size_t slice = 0; slice < shardCount; ++slice) {
      const auto& bin = binned[slice][shard];
      indices.insert(indices.end(), bin.begin(), bin.end());
    }
    // Slices cover ascending contiguous ranges, so `indices` is already
    // ascending; stable_sort therefore keeps equal keys in original pair
    // order — the stability the seed's global sort provided.
    std::stable_sort(indices.begin(), indices.end(),
                     [&keys](uint32_t a, uint32_t b) {
                       return keyLess(keys[a], keys[b]);
                     });
    for (uint32_t index : indices) {
      const Value& key = pairs[index].asList()->item(1);
      const Value& value = pairs[index].asList()->item(2);
      if (!groups[shard].empty() &&
          groups[shard].back().asList()->item(1).equals(key)) {
        groups[shard].back().asList()->item(2).asList()->add(value);
      } else {
        auto group = List::make();
        group->add(key);
        group->add(Value(List::make({value})));
        groups[shard].push_back(Value(group));
        heads[shard].push_back(&keys[index]);
      }
    }
  };

  if (shardCount == 1) {
    keySlice(0);
    groupShard(0);
    return std::move(groups[0]);
  }

  WorkerPool& pool = WorkerPool::shared();
  {
    std::vector<TaskGroup::Task> tasks;
    tasks.reserve(shardCount);
    for (size_t s = 0; s < shardCount; ++s) {
      tasks.push_back([&keySlice](size_t slice) {
        fault::inject(fault::Point::TaskThrow);
        keySlice(slice);
      });
    }
    auto phase = std::make_shared<TaskGroup>(std::move(tasks), token);
    pool.submit(phase);
    phase->wait();
    phase->rethrowIfError();
  }
  {
    std::vector<TaskGroup::Task> tasks;
    tasks.reserve(shardCount);
    for (size_t s = 0; s < shardCount; ++s) {
      tasks.push_back([&groupShard](size_t shard) {
        fault::inject(fault::Point::TaskThrow);
        groupShard(shard);
      });
    }
    auto phase = std::make_shared<TaskGroup>(std::move(tasks), token);
    pool.submit(phase);
    phase->wait();
    phase->rethrowIfError();
  }

  // --- C: merge the sorted shard group lists ------------------------------
  size_t total = 0;
  std::vector<size_t> cursor(shardCount, 0);
  for (const auto& g : groups) total += g.size();
  out.reserve(total);
  while (out.size() < total) {
    size_t best = shardCount;
    for (size_t s = 0; s < shardCount; ++s) {
      if (cursor[s] >= groups[s].size()) continue;
      if (best == shardCount ||
          keyLess(*heads[s][cursor[s]], *heads[best][cursor[best]])) {
        best = s;
      }
    }
    out.push_back(std::move(groups[best][cursor[best]]));
    ++cursor[best];
  }
  return out;
}

/// One pipeline pass, either parallel or sequential. Throws on failure
/// (with the original exception type); run() owns the degradation
/// decision.
ListPtr runOnce(const ListPtr& input, const MapFn& mapFn,
                const ReduceFn& reduceFn, const Options& options,
                bool sequential, const CancelTokenPtr& token,
                Stats& local) {
  const size_t width = options.workers == 0 ? 4 : options.workers;

  workers::ParallelOptions phaseOptions;
  phaseOptions.maxWorkers = options.workers;
  phaseOptions.maxRetries = options.maxRetries;
  // The pipeline deadline lives in `token`; the phase Parallels must not
  // degrade internally (this function owns the outer ladder rung).
  phaseOptions.allowDegrade = false;
  phaseOptions.cancel = token;

  // --- map phase -------------------------------------------------------------
  std::vector<Value> pairs;
  if (sequential) {
    pairs.reserve(input->length());
    for (const Value& item : input->items()) {
      pairs.push_back(toPair(item, mapFn(item)));
    }
    local.mapMakespan = input->length();
  } else {
    workers::Parallel job(input->items(), phaseOptions);
    job.map([mapFn](const Value& item) { return toPair(item, mapFn(item)); });
    pairs = job.takeData();  // waits; throws on worker error
    local.mapMakespan = job.virtualMakespan();
  }

  // --- shuffle: sharded sort-by-key + grouping --------------------------------
  std::vector<Value> groups =
      shuffleAndGroup(pairs, width, sequential, token);
  local.distinctKeys = groups.size();

  // --- reduce phase ---------------------------------------------------------------
  auto reduceGroup = [reduceFn](const Value& group) {
    auto out = List::make();
    out->add(group.asList()->item(1));
    out->add(reduceFn(group.asList()->item(2).asList()));
    return Value(out);
  };
  std::vector<Value> reduced;
  if (sequential) {
    reduced.reserve(groups.size());
    for (const Value& group : groups) reduced.push_back(reduceGroup(group));
    local.reduceMakespan = groups.size();
  } else {
    workers::Parallel job(groups, phaseOptions);
    job.map(reduceGroup);
    reduced = job.takeData();
    local.reduceMakespan = job.virtualMakespan();
  }

  return List::make(std::move(reduced));
}

}  // namespace

ReduceFn identityReduce() {
  return [](const ListPtr& values) { return Value(values); };
}

ListPtr run(const ListPtr& input, const MapFn& mapFn,
            const ReduceFn& reduceFn, const Options& options, Stats* stats) {
  if (!input) throw Error("mapReduce: null input list");
  Stats local;
  local.inputItems = input->length();

  // One token spans the whole pipeline, so map, shuffle and reduce share
  // a single wall-clock budget instead of each phase getting its own.
  CancelTokenPtr token;
  if (options.deadlineSeconds > 0) {
    token = CancelToken::withDeadline(options.deadlineSeconds,
                                      options.cancel);
  } else {
    token = options.cancel;  // may be null
  }

  ListPtr out;
  if (options.sequential) {
    out = runOnce(input, mapFn, reduceFn, options, true, token, local);
  } else {
    try {
      out = runOnce(input, mapFn, reduceFn, options, false, token, local);
    } catch (...) {
      std::exception_ptr error = std::current_exception();
      // Only a *transient* substrate failure earns the sequential rerun.
      // Timeout/Cancelled must not (a rerun after a blown deadline only
      // blows it further) and user-script errors are deterministic.
      if (!options.allowDegrade ||
          classifyError(error) != ErrorClass::Substrate) {
        std::rethrow_exception(error);
      }
      workers::substrateStats().bump(&workers::SubstrateStats::downgrades);
      local = Stats{};
      local.inputItems = input->length();
      local.degraded = true;
      out = runOnce(input, mapFn, reduceFn, options, true, token, local);
    }
  }

  if (stats) *stats = local;
  return out;
}

Job::Job(ListPtr input, MapFn mapFn, ReduceFn reduceFn, Options options) {
  // One pipeline task on the shared pool — no dedicated thread. The
  // pipeline's own Parallel ops nest on the same pool; their waits drain
  // unclaimed chunk tasks on this worker, so the pool never wedges.
  std::vector<TaskGroup::Task> tasks;
  // The pipeline runs on a pool worker, but its retries/downgrades (and
  // those of the Parallels it nests) belong to the tenant that built the
  // Job — carry the constructing thread's stats scope onto the worker.
  workers::SubstrateStats* stats = &workers::substrateStats();
  tasks.push_back([this, stats, input = std::move(input),
                   mapFn = std::move(mapFn),
                   reduceFn = std::move(reduceFn), options](size_t) {
    workers::StatsScope scope(*stats);
    try {
      result_ = run(input, mapFn, reduceFn, options, &stats_);
      if (stats_.degraded) {
        degraded_.store(true, std::memory_order_release);
      }
    } catch (...) {
      errorPtr_ = std::current_exception();
      errorClass_ = classifyError(errorPtr_);
      try {
        std::rethrow_exception(errorPtr_);
      } catch (const std::exception& e) {
        error_ = e.what();
      } catch (...) {
        error_ = "unknown mapReduce error";
      }
      failed_.store(true, std::memory_order_release);
    }
    done_.store(true, std::memory_order_release);
  });
  group_ = std::make_shared<TaskGroup>(std::move(tasks));
  try {
    WorkerPool::shared().submit(group_);
  } catch (const SubstrateError&) {
    // The pool cannot take even the pipeline task. Run it inline on the
    // constructor's thread — the caller's poll loop then sees an already
    // resolved job. With degradation forbidden, surface the launch
    // failure as the job's error instead (the poll contract stays: jobs
    // fail, constructors do not throw).
    if (options.allowDegrade) {
      degraded_.store(true, std::memory_order_release);
      workers::substrateStats().bump(&workers::SubstrateStats::downgrades);
      group_->wait();
    } else {
      errorPtr_ = std::current_exception();
      errorClass_ = classifyError(errorPtr_);
      try {
        std::rethrow_exception(errorPtr_);
      } catch (const std::exception& e) {
        error_ = e.what();
      }
      failed_.store(true, std::memory_order_release);
      done_.store(true, std::memory_order_release);
    }
  }
}

Job::~Job() { group_->wait(); }

}  // namespace psnap::mr
