// The MapReduce engine behind the mapReduce block (paper Sec. 3.4).
//
// Semantics, matching the paper's description and examples:
//
//   * The map function runs on every input item in parallel. Its result
//     becomes the intermediate pair: if the result is itself a two-element
//     list it is taken as [key, value]; otherwise the pair is
//     [item, result] ("a two-element list with the item as the key and the
//     result as the value").
//   * "The elements of the intermediate result are sorted by the value of
//     the key in between the map function and the reduce function, as
//     required by the semantics of MapReduce" (paper footnote 6).
//   * The reduce function runs once per distinct key, in parallel across
//     keys, receiving the list of that key's values and reporting the
//     reduced value. The identity reduce passes the values list through.
//   * The output is the sorted list of [key, reduced] pairs — exactly the
//     word-count readout of paper Fig. 12.
//
// Fault model: the pipeline owns its input, so it sits on the outermost
// rung of the degradation ladder (parallel.hpp) — when the parallel path
// dies with a *transient* substrate error (retries exhausted, shuffle
// task lost), run() re-executes the whole pipeline sequentially and
// reports Stats::degraded. Deadline expiry and cancellation do NOT
// degrade (a sequential rerun after a blown deadline would only blow it
// further); they surface as TimeoutError / CancelledError. User-script
// errors from the map/reduce functions are deterministic and always
// propagate with their original type.
//
// "Although conceptually simple, MapReduce implementations can be quite
// complex to set up and use. Fortunately, these details are hidden in the
// implementation of the MapReduce block" — this file is those details.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "blocks/value.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "workers/parallel.hpp"
#include "workers/task_group.hpp"

namespace psnap::mr {

/// item → mapped value (or explicit [key, value] pair).
using MapFn = std::function<blocks::Value(const blocks::Value&)>;
/// values-of-one-key → reduced value.
using ReduceFn = std::function<blocks::Value(const blocks::ListPtr&)>;

struct Options {
  /// Worker width for both phases; 0 uses the Parallel default (4).
  size_t workers = 0;
  /// Run phases sequentially on the caller thread (for the sequential
  /// baseline rows of the benches).
  bool sequential = false;
  /// Per-chunk retries inside the phase Parallels (substrate errors
  /// only; see ParallelOptions::maxRetries).
  int maxRetries = 2;
  /// Wall-clock budget for the whole pipeline (map + shuffle + reduce);
  /// 0 means none. Expiry fails the run with TimeoutError.
  double deadlineSeconds = 0;
  /// Permit the sequential rerun after a transient substrate failure.
  bool allowDegrade = true;
  /// External cancellation for the whole pipeline.
  CancelTokenPtr cancel;
  /// Optional chunk-at-a-time fast path for the map phase (the native
  /// tier's compiled kernel). Same contract as workers::MapBatchFn:
  /// all-or-nothing in-place transform, false when not servable. The
  /// pipeline keys pairs by the ORIGINAL items, so the batch transform
  /// runs on a scratch copy of each slice.
  workers::MapBatchFn mapBatch;
};

struct Stats {
  size_t inputItems = 0;
  size_t distinctKeys = 0;
  uint64_t mapMakespan = 0;     ///< virtual: max items mapped by one worker
  uint64_t reduceMakespan = 0;  ///< virtual: max groups reduced by one worker
  /// True when the run completed through the sequential fallback.
  bool degraded = false;
};

/// Run a complete MapReduce synchronously. Returns the sorted list of
/// [key, value] pairs. `stats`, when non-null, receives phase accounting.
blocks::ListPtr run(const blocks::ListPtr& input, const MapFn& mapFn,
                    const ReduceFn& reduceFn, const Options& options = {},
                    Stats* stats = nullptr);

/// The identity reduce: reports the values list unchanged (the paper notes
/// either phase may be the identity).
ReduceFn identityReduce();

/// An asynchronous MapReduce job for integration with the cooperative
/// scheduler — a completion-chained pipeline with no phase barriers:
///
///   stage 1   W slice tasks: map each item, normalize the pair, compute
///             its SortKey, bin its index by shard (the map phase and the
///             shuffle's key pass, fused);
///   stage 2   W shard tasks: concatenate the shard's bins, stable-sort,
///             group adjacent equal keys, reduce each group (the shuffle's
///             sort/group and the reduce phase, fused);
///   merge     a serial W-way merge of the per-shard sorted outputs, run
///             by whichever worker finishes stage 2 last.
///
/// Each stage is launched by its predecessor's completion callback — no
/// thread ever sits in a wait() between phases, and no pool worker is
/// pinned for the pipeline's duration. The output is byte-identical to
/// run()'s (the ordering argument is in DESIGN.md): per-shard grouping
/// emits the order of a global stable sort because equivalent keys always
/// share a shard, and the per-group reduce is independent of grouping.
///
/// The block primitive registers onComplete() and parks; the callback
/// fires exactly once, from the worker that settles the pipeline (or
/// immediately on the registering thread if already settled). resolved()
/// stays for tests and assertions. Degradation: a transient substrate
/// failure (or a refused stage submit with allowDegrade) reruns the
/// pipeline sequentially on the thread that observed the failure, under
/// the same deadline; with degradation forbidden, failures settle the job
/// typed — constructors do not throw.
class Job {
 public:
  Job(blocks::ListPtr input, MapFn mapFn, ReduceFn reduceFn,
      Options options);
  ~Job();

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  /// Register a completion callback: fires exactly once, from the worker
  /// that settles the pipeline, or immediately if already settled.
  void onComplete(workers::CompletionLatch::Callback cb);

  /// Cancel the pipeline: stage tasks not yet claimed are skipped and the
  /// job settles with CancelledError (unless it already completed).
  void cancel(const std::string& reason = "mapReduce pipeline cancelled");

  /// Kept for tests and assertions; scheduler integration registers
  /// onComplete() instead of polling this per frame.
  bool resolved() const { return done_.load(std::memory_order_acquire); }
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  const std::string& errorMessage() const { return error_; }
  /// The failure's class tag (None while clean). Meaningful once resolved.
  ErrorClass errorClass() const { return errorClass_; }
  /// The original exception (null while clean). Meaningful once resolved.
  const std::exception_ptr& error() const { return errorPtr_; }
  /// Did the pipeline complete through a sequential fallback (either the
  /// inline launch degrade or run()'s internal rerun)?
  bool wasDegraded() const {
    return degraded_.load(std::memory_order_acquire);
  }
  /// Valid once resolved and not failed.
  const blocks::ListPtr& result() const { return result_; }
  const Stats& stats() const { return stats_; }

 private:
  /// Heap-held pipeline state shared by the stage tasks (defined in
  /// engine.cpp). Tasks capture the owning Job*, which is safe because
  /// ~Job blocks on the latch and every path settles it last.
  struct Pipeline;

  void startStage1();
  void startStage2();
  void stage1Done();
  void stage2Done();
  /// Submit a stage; on pool refusal either drain it inline on this
  /// thread (allowDegrade) or settle the job with the SubstrateError.
  void submitStage(const std::shared_ptr<workers::TaskGroup>& stage,
                   workers::CompletionLatch::Callback continuation);
  /// Sequential rerun (same token, so the deadline does not restart) for
  /// a transient substrate failure; otherwise settle the error typed.
  void failOrDegrade(std::exception_ptr error);
  void settleOk();
  void settleError(std::exception_ptr error);

  std::unique_ptr<Pipeline> pipe_;
  workers::CompletionLatch latch_;
  CancelTokenPtr token_;  // always non-null: the job's cancel() handle
  std::atomic<bool> done_{false};
  std::atomic<bool> failed_{false};
  std::atomic<bool> degraded_{false};
  std::string error_;
  ErrorClass errorClass_ = ErrorClass::None;
  std::exception_ptr errorPtr_;
  blocks::ListPtr result_;
  Stats stats_;
};

}  // namespace psnap::mr
