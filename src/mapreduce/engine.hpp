// The MapReduce engine behind the mapReduce block (paper Sec. 3.4).
//
// Semantics, matching the paper's description and examples:
//
//   * The map function runs on every input item in parallel. Its result
//     becomes the intermediate pair: if the result is itself a two-element
//     list it is taken as [key, value]; otherwise the pair is
//     [item, result] ("a two-element list with the item as the key and the
//     result as the value").
//   * "The elements of the intermediate result are sorted by the value of
//     the key in between the map function and the reduce function, as
//     required by the semantics of MapReduce" (paper footnote 6).
//   * The reduce function runs once per distinct key, in parallel across
//     keys, receiving the list of that key's values and reporting the
//     reduced value. The identity reduce passes the values list through.
//   * The output is the sorted list of [key, reduced] pairs — exactly the
//     word-count readout of paper Fig. 12.
//
// "Although conceptually simple, MapReduce implementations can be quite
// complex to set up and use. Fortunately, these details are hidden in the
// implementation of the MapReduce block" — this file is those details.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "blocks/value.hpp"
#include "workers/parallel.hpp"
#include "workers/task_group.hpp"

namespace psnap::mr {

/// item → mapped value (or explicit [key, value] pair).
using MapFn = std::function<blocks::Value(const blocks::Value&)>;
/// values-of-one-key → reduced value.
using ReduceFn = std::function<blocks::Value(const blocks::ListPtr&)>;

struct Options {
  /// Worker width for both phases; 0 uses the Parallel default (4).
  size_t workers = 0;
  /// Run phases sequentially on the caller thread (for the sequential
  /// baseline rows of the benches).
  bool sequential = false;
};

struct Stats {
  size_t inputItems = 0;
  size_t distinctKeys = 0;
  uint64_t mapMakespan = 0;     ///< virtual: max items mapped by one worker
  uint64_t reduceMakespan = 0;  ///< virtual: max groups reduced by one worker
};

/// Run a complete MapReduce synchronously. Returns the sorted list of
/// [key, value] pairs. `stats`, when non-null, receives phase accounting.
blocks::ListPtr run(const blocks::ListPtr& input, const MapFn& mapFn,
                    const ReduceFn& reduceFn, const Options& options = {},
                    Stats* stats = nullptr);

/// The identity reduce: reports the values list unchanged (the paper notes
/// either phase may be the identity).
ReduceFn identityReduce();

/// An asynchronous MapReduce job for integration with the cooperative
/// scheduler: the whole pipeline runs as one task on the shared
/// WorkerPool (fanning out to further pool tasks internally) and the
/// block primitive polls resolved() from its yield loop, exactly like
/// Listing 2 polls its Parallel job.
class Job {
 public:
  Job(blocks::ListPtr input, MapFn mapFn, ReduceFn reduceFn,
      Options options);
  ~Job();

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  bool resolved() const { return done_.load(); }
  bool failed() const { return failed_.load(); }
  const std::string& errorMessage() const { return error_; }
  /// Valid once resolved and not failed.
  const blocks::ListPtr& result() const { return result_; }
  const Stats& stats() const { return stats_; }

 private:
  std::shared_ptr<workers::TaskGroup> group_;
  std::atomic<bool> done_{false};
  std::atomic<bool> failed_{false};
  std::string error_;
  blocks::ListPtr result_;
  Stats stats_;
};

}  // namespace psnap::mr
