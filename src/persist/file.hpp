// Snapshot file I/O: the streaming section writer and the mmap'd region.
//
// Writer contract: nothing observable until commit. The writer streams
// into `<path>.tmp.<pid>` and renames onto the final path only in
// commit(), so a crash, a thrown fault, or an abandoned writer never
// leaves a partial snapshot where a reader could open it (rename(2) on
// the same filesystem is atomic). The header and section table are
// reserved up front and back-patched at commit, which is what lets a
// 100M-row dataset stream through without ever materializing in RAM.
//
// Reader contract: Region::map validates before anyone dereferences —
// magic, version, header self-check, Value-ABI fingerprint, recorded
// vs. actual file size, and per-section bounds and alignment — raising
// SubstrateError for anything torn, truncated, or foreign. The mapping
// is MAP_PRIVATE with PROT_READ|PROT_WRITE: reads are shared page-cache
// pages; the few slots the loader patches (long-text fixups) become
// private dirty pages without ever touching the file. Lists alias the
// mapping through a shared_ptr<Region>, so the region unmaps exactly
// when the last aliasing buffer dies — and destroys its fixed-up Values
// (which own heap TextReps) first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "persist/format.hpp"

namespace psnap::blocks {
class Value;
}

namespace psnap::persist {

/// Streams one snapshot file: reserve header space, append aligned
/// sections, back-patch and atomically publish on commit.
class SnapshotFileWriter {
 public:
  /// Opens `<path>.tmp.<pid>` and reserves the header + section table.
  /// Evaluates fault::Point::SnapshotWriteFailure.
  SnapshotFileWriter(std::string path, SnapshotKind kind);

  /// Abandons (closes and unlinks the temp file) unless committed.
  ~SnapshotFileWriter();

  SnapshotFileWriter(const SnapshotFileWriter&) = delete;
  SnapshotFileWriter& operator=(const SnapshotFileWriter&) = delete;

  /// Starts a streamed section: pads the file to entryAlign and records
  /// the payload offset. Evaluates SnapshotWriteFailure.
  void beginSection(SectionId id, uint64_t entrySize, uint64_t entryAlign);

  /// Appends raw bytes to the open section. `bytes` need not be a
  /// multiple of entrySize per call; the total at endSection must be.
  void append(const void* data, size_t bytes);

  /// Closes the open section, fixing its Block from the streamed total.
  void endSection();

  /// One-shot section helper for in-memory arrays.
  template <typename T>
  void writeArraySection(SectionId id, const std::vector<T>& entries) {
    beginSection(id, sizeof(T), alignof(T));
    if (!entries.empty()) append(entries.data(), entries.size() * sizeof(T));
    endSection();
  }

  void writeBytesSection(SectionId id, const char* data, size_t bytes) {
    beginSection(id, 1, 1);
    if (bytes) append(data, bytes);
    endSection();
  }

  /// Normalize one inline-kind Value (nothing/number/boolean/small-text)
  /// into a zeroed scratch image and append it to the open section. The
  /// caller guarantees the kind is inline (everything else is a patch).
  void appendValueSlot(const blocks::Value& value);

  /// Appends a zeroed slot (the on-disk image of a patched slot).
  void appendZeroSlot();

  /// Back-patches header + section table, fsyncs, and renames onto the
  /// final path. Evaluates SnapshotWriteFailure. After commit the writer
  /// is inert.
  void commit();

 private:
  void writeRaw(const void* data, size_t bytes);
  void padTo(uint64_t align);
  [[noreturn]] void fail(const std::string& what);
  void abandon();

  std::string path_;
  std::string tempPath_;
  int fd_ = -1;
  uint64_t offset_ = 0;       ///< current file write position
  FileHeader header_;
  SectionHeader sections_[kMaxSections];
  size_t sectionCount_ = 0;
  bool sectionOpen_ = false;
  uint64_t sectionStart_ = 0;
  bool committed_ = false;
  std::vector<char> buffer_;  ///< write coalescing buffer
};

/// An open, validated snapshot mapping. Created via Region::map and held
/// through shared_ptr by every List buffer that aliases it; tear-down
/// destroys the loader's fixed-up Values and then unmaps.
class Region {
 public:
  /// Maps and validates `path`. Evaluates fault::Point::MmapFailure;
  /// raises SubstrateError for unreadable, truncated, foreign-ABI, or
  /// corrupt files.
  static std::shared_ptr<Region> map(const std::string& path);

  ~Region();
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;

  const FileHeader& header() const { return header_; }
  SnapshotKind kind() const { return SnapshotKind(header_.kind); }

  /// The section with this id, or nullptr when absent.
  const SectionHeader* section(SectionId id) const;

  /// The section's payload as a typed array; validates entry size and
  /// alignment against T (SubstrateError on mismatch). Returns nullptr
  /// for an absent section (*count = 0).
  template <typename T>
  const T* array(SectionId id, uint64_t* count) const {
    const SectionHeader* s = section(id);
    if (!s) {
      *count = 0;
      return nullptr;
    }
    checkEntryShape(*s, sizeof(T), alignof(T));
    *count = s->block.num_entries;
    return reinterpret_cast<const T*>(base_ + s->offset);
  }

  /// Raw payload bytes of a section (for blobs).
  const char* bytes(SectionId id, uint64_t* size) const;

  /// Mutable view into the (MAP_PRIVATE) mapping for loader fixups.
  char* mutableBase() { return base_; }

  /// Registers a Value the loader placement-constructed into the mapping;
  /// it is destroyed (releasing its heap payload) before munmap.
  void registerFixup(blocks::Value* slot) { fixups_.push_back(slot); }

  size_t mappedBytes() const { return size_; }

 private:
  Region() = default;
  void checkEntryShape(const SectionHeader& s, uint64_t entrySize,
                       uint64_t entryAlign) const;

  char* base_ = nullptr;
  size_t size_ = 0;
  FileHeader header_;
  const SectionHeader* sections_ = nullptr;  ///< into the mapping
  std::vector<blocks::Value*> fixups_;
};

}  // namespace psnap::persist
