// Typed-block snapshots of Snap! values and whole projects.
//
// Write side: two paths share one file format. `saveValue` /
// `saveProjectImage` encode an in-memory value tree — lists deduplicated
// by identity (shared sublists stay shared after a round trip), cycles
// and rings rejected with PurityError, every slot a normalized raw
// `blocks::Value` image. `DatasetWriter` streams a single flat list one
// element at a time, so a 100M-row dataset is written in O(1) memory.
//
// Read side: `loadValue` / `loadList` mmap the file (persist/file.hpp)
// and rebuild the roots in O(pages touched), not O(items):
//
//   * a *leaf* list (no sublists — every dataset) becomes a mapped-buffer
//     List aliasing its slot range in the mapping directly; nothing is
//     copied, no page is read until a query touches it;
//   * long-text slots are patched by placement-constructing the text
//     Value into the (MAP_PRIVATE) mapping — one private page per
//     patched slot, still no parse;
//   * a *spine* list (one that contains sublists) is materialized as an
//     owned buffer whose ListRef elements point at the decoded children.
//     Spines are never mapped, so a shared mapped buffer is always
//     sublist-free — the exact invariant the COW value plane's O(1)
//     snapshotClone relies on (DESIGN.md, "Value plane").
//
// Loaded lists are ordinary Lists in every observable way: mutation
// copies the buffer out first (the detach gate), transfer and
// structuredClone share it O(1), and the mapping lives exactly as long
// as the last buffer aliasing it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "blocks/value.hpp"
#include "persist/format.hpp"

namespace psnap::persist {

class SnapshotFileWriter;

/// Writes `root` (any transferable value tree) as a dataset snapshot.
/// Atomic: the file appears only complete. Throws PurityError for rings,
/// futures, or cyclic lists; SubstrateError for I/O failures.
void saveValue(const std::string& path, const blocks::Value& root);

/// Opens a dataset snapshot; list values alias the mapping as described
/// above. Throws SubstrateError for missing/truncated/corrupt/foreign
/// files.
blocks::Value loadValue(const std::string& path);

/// Convenience wrappers for list-rooted datasets. loadList throws
/// SubstrateError if the snapshot's root is not a list.
void saveList(const std::string& path, const blocks::ListPtr& list);
blocks::ListPtr loadList(const std::string& path);

/// Streams one flat list to a dataset snapshot in O(1) memory (long-text
/// blob excepted). Elements must be scalar — nothing, number, boolean,
/// or text; a sublist, ring, or future throws PurityError. Nothing is
/// observable at `path` until commit().
class DatasetWriter {
 public:
  explicit DatasetWriter(std::string path);
  ~DatasetWriter();
  DatasetWriter(const DatasetWriter&) = delete;
  DatasetWriter& operator=(const DatasetWriter&) = delete;

  void append(const blocks::Value& item);
  /// Fast path for numeric datasets: no kind dispatch per element.
  void appendNumber(double number);

  uint64_t count() const { return count_; }

  /// Finishes the slot stream, writes the tables, and atomically
  /// publishes the file.
  void commit();

 private:
  std::unique_ptr<SnapshotFileWriter> writer_;
  std::vector<TextPatch> textPatches_;
  std::string blob_;
  uint64_t count_ = 0;
  bool committed_ = false;
};

/// The persistable image of a project: its XML skeleton (scripts, sprite
/// structure — everything but variable values) plus every variable's
/// value as a tree. `owner` 0 is the project globals scope; 1+n is the
/// nth sprite in XML order.
struct ProjectImage {
  struct Var {
    uint64_t owner = 0;
    std::string name;
    blocks::Value value;
  };
  std::string xml;
  std::vector<Var> vars;
};

/// Writes a project snapshot. Same atomicity and error contract as
/// saveValue; variable values that are rings are skipped by the caller
/// (projects store them in the XML skeleton instead).
void saveProjectImage(const std::string& path, const ProjectImage& image);

/// Opens a project snapshot. Variable list values alias the mapping
/// exactly as dataset loads do.
ProjectImage loadProjectImage(const std::string& path);

/// Cheap header-only probe (no section decode): what kind of snapshot a
/// file is and how big its value plane is. For tools, tests, and the
/// serve layer's catalog listing.
struct SnapshotInfo {
  SnapshotKind kind = SnapshotKind::Dataset;
  uint64_t slots = 0;      ///< ValueSlots entries
  uint64_t lists = 0;      ///< Lists entries
  uint64_t fileBytes = 0;
};
SnapshotInfo inspect(const std::string& path);

}  // namespace psnap::persist
