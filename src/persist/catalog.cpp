#include "persist/catalog.hpp"

#include <signal.h>

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <set>
#include <system_error>
#include <unordered_map>

#include "persist/snapshot.hpp"

namespace psnap::persist {

namespace {

std::mutex gMutex;
/// Pristine roots, keyed by path. Never handed out directly — every
/// caller gets a snapshotClone — so an entry always still aliases its
/// mapping regardless of what readers do to their copies.
std::unordered_map<std::string, blocks::ListPtr> gOpens;

/// Directories already swept for orphaned temps this process. Guarded by
/// gMutex; sweeping once per directory keeps the open path O(1) after
/// the first open.
std::set<std::string>& sweptDirs() {
  static std::set<std::string> dirs;
  return dirs;
}

/// Parse the pid out of a `<name>.tmp.<pid>` staged filename. Returns 0
/// when the name is not a stage file.
pid_t stagePid(const std::string& name) {
  const size_t at = name.rfind(".tmp.");
  if (at == std::string::npos) return 0;
  const std::string digits = name.substr(at + 5);
  if (digits.empty()) return 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return 0;
  }
  errno = 0;
  const long pid = std::strtol(digits.c_str(), nullptr, 10);
  if (errno != 0 || pid <= 0) return 0;
  return pid_t(pid);
}

}  // namespace

size_t sweepOrphanedTemps(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return 0;
  size_t removed = 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const pid_t pid = stagePid(entry.path().filename().string());
    if (pid == 0) continue;
    // kill(pid, 0) probes liveness without signalling. ESRCH means the
    // writer is gone and its stage file can never commit; EPERM means
    // some live process owns the pid — keep the file, exactly as for a
    // live writer of ours.
    if (::kill(pid, 0) == 0 || errno != ESRCH) continue;
    if (fs::remove(entry.path(), ec) && !ec) ++removed;
  }
  return removed;
}

blocks::ListPtr openSharedList(const std::string& path) {
  {
    // First open under a directory sweeps writers that died mid-stage
    // (once per directory per process).
    const std::string dir =
        std::filesystem::path(path).parent_path().string();
    std::lock_guard<std::mutex> lock(gMutex);
    if (sweptDirs().insert(dir).second) {
      sweepOrphanedTemps(dir.empty() ? std::string(".") : dir);
    }
  }
  {
    std::lock_guard<std::mutex> lock(gMutex);
    if (const auto it = gOpens.find(path); it != gOpens.end()) {
      return it->second->snapshotClone();
    }
  }
  // Map outside the lock: a slow open (validation + fixups) must not
  // stall unrelated opens. A racing duplicate map is benign — the loser
  // is discarded below and unmaps immediately.
  blocks::ListPtr loaded = loadList(path);
  std::lock_guard<std::mutex> lock(gMutex);
  const auto [it, inserted] = gOpens.emplace(path, std::move(loaded));
  return it->second->snapshotClone();
}

bool releaseSharedOpen(const std::string& path) {
  std::lock_guard<std::mutex> lock(gMutex);
  return gOpens.erase(path) > 0;
}

size_t sharedOpenCount() {
  std::lock_guard<std::mutex> lock(gMutex);
  return gOpens.size();
}

void clearSharedOpens() {
  std::lock_guard<std::mutex> lock(gMutex);
  gOpens.clear();
}

}  // namespace psnap::persist
