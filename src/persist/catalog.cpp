#include "persist/catalog.hpp"

#include <mutex>
#include <unordered_map>

#include "persist/snapshot.hpp"

namespace psnap::persist {

namespace {

std::mutex gMutex;
/// Pristine roots, keyed by path. Never handed out directly — every
/// caller gets a snapshotClone — so an entry always still aliases its
/// mapping regardless of what readers do to their copies.
std::unordered_map<std::string, blocks::ListPtr> gOpens;

}  // namespace

blocks::ListPtr openSharedList(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(gMutex);
    if (const auto it = gOpens.find(path); it != gOpens.end()) {
      return it->second->snapshotClone();
    }
  }
  // Map outside the lock: a slow open (validation + fixups) must not
  // stall unrelated opens. A racing duplicate map is benign — the loser
  // is discarded below and unmaps immediately.
  blocks::ListPtr loaded = loadList(path);
  std::lock_guard<std::mutex> lock(gMutex);
  const auto [it, inserted] = gOpens.emplace(path, std::move(loaded));
  return it->second->snapshotClone();
}

bool releaseSharedOpen(const std::string& path) {
  std::lock_guard<std::mutex> lock(gMutex);
  return gOpens.erase(path) > 0;
}

size_t sharedOpenCount() {
  std::lock_guard<std::mutex> lock(gMutex);
  return gOpens.size();
}

void clearSharedOpens() {
  std::lock_guard<std::mutex> lock(gMutex);
  gOpens.clear();
}

}  // namespace psnap::persist
