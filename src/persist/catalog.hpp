// Process-wide catalog of open dataset mappings: one mmap serves N
// readers.
//
// The serve layer's tenants (and any other concurrent readers) should
// not each map the same snapshot file — the page cache would be shared
// by the kernel anyway, but N mappings cost N opens, N validations, and
// N fixup passes. The catalog keeps a path-keyed cache of loaded
// dataset roots: the first open maps and decodes; every later open is
// an O(1) snapshotClone of the cached root — a fresh List node sharing
// the mapped buffer, so no two readers ever share a mutable List object
// and one reader's mutation (which copies the buffer out via the detach
// gate) cannot be observed by another.
//
// The cached root is never handed out, so it stays pristine (still
// aliasing the mapping) no matter what readers do to their clones. The
// catalog holds it strongly — a pinned mapping costs address space, not
// resident memory (its pages are clean, file-backed, and evictable) —
// until releaseSharedOpen drops it; live reader clones keep the region
// mapped through their buffers until they die.
#pragma once

#include <cstddef>
#include <string>

#include "blocks/value.hpp"

namespace psnap::persist {

/// Opens the dataset snapshot at `path` through the shared cache. The
/// returned list is private to the caller (mutation-safe) but aliases
/// the one shared mapping. Throws SubstrateError as loadList does.
blocks::ListPtr openSharedList(const std::string& path);

/// Drops the cache entry for `path` (no-op when absent). Readers that
/// already hold clones keep the mapping alive until they release them;
/// the next open remaps. Returns true when an entry was dropped.
bool releaseSharedOpen(const std::string& path);

/// Number of cached mappings. Diagnostic/test hook.
size_t sharedOpenCount();

/// Drops every cache entry (same semantics as releaseSharedOpen for
/// each). Test hook.
void clearSharedOpens();

/// Remove staged `*.tmp.<pid>` files left behind in `dir` by writers
/// whose process died before commit (SnapshotFileWriter stages into
/// `<path>.tmp.<pid>` and renames only on success — an abnormal exit
/// leaks the stage file). A temp whose pid is still alive is left
/// alone: that writer may yet commit. Returns the number of files
/// removed; a missing or unreadable directory sweeps nothing. Runs
/// automatically, once per directory per process, on the catalog open
/// path and on supervisor checkpoint-directory opens.
size_t sweepOrphanedTemps(const std::string& dir);

}  // namespace psnap::persist
