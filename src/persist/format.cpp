#include "persist/format.hpp"

#include <cstring>
#include <new>

#include "blocks/value.hpp"

namespace psnap::persist {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t fnv1a(uint64_t hash, const void* data, size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
  return hash;
}

/// Placement-construct a sample Value into zeroed scratch and fold its raw
/// bytes into the hash. Zeroing first makes padding deterministic — the
/// same normalization the snapshot writer applies to every slot.
template <typename Arg>
uint64_t foldSample(uint64_t hash, Arg&& arg) {
  alignas(blocks::Value) unsigned char scratch[sizeof(blocks::Value)];
  std::memset(scratch, 0, sizeof(scratch));
  slotImageFence(scratch);
  auto* v = new (scratch) blocks::Value(std::forward<Arg>(arg));
  slotImageFence(scratch);
  hash = fnv1a(hash, scratch, sizeof(scratch));
  v->~Value();
  return hash;
}

}  // namespace

uint64_t valueAbiFingerprint() {
  // Computed once: the layout cannot change within a process.
  static const uint64_t fingerprint = [] {
    uint64_t h = kFnvOffset;
    const uint64_t size = sizeof(blocks::Value);
    const uint64_t align = alignof(blocks::Value);
    h = fnv1a(h, &size, sizeof(size));
    h = fnv1a(h, &align, sizeof(align));
    h = foldSample(h, blocks::Value());
    h = foldSample(h, 0.0625);            // exact double, no rounding noise
    h = foldSample(h, true);
    h = foldSample(h, std::string_view("abc"));  // small-text
    h = foldSample(h, std::string_view("0123456789abcde"));  // max inline
    return h;
  }();
  return fingerprint;
}

uint64_t headerCheck(const FileHeader& header) {
  uint64_t h = kFnvOffset;
  h = fnv1a(h, &header.magic, sizeof(header.magic));
  h = fnv1a(h, &header.version, sizeof(header.version));
  h = fnv1a(h, &header.kind, sizeof(header.kind));
  h = fnv1a(h, &header.valueAbi, sizeof(header.valueAbi));
  h = fnv1a(h, &header.sectionCount, sizeof(header.sectionCount));
  h = fnv1a(h, &header.fileBytes, sizeof(header.fileBytes));
  return h;
}

}  // namespace psnap::persist
