#include "persist/snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <new>
#include <unordered_map>

#include "persist/file.hpp"
#include "support/error.hpp"

namespace psnap::persist {

using blocks::List;
using blocks::ListPtr;
using blocks::Value;
using blocks::ValueKind;

namespace {

constexpr size_t kInlineTextCap = 15;  // Value's SmallText capacity

/// Normalized raw image of an inline-kind Value: zeroed scratch +
/// placement-copy, so variant padding is deterministic. Texts are
/// rebuilt from their view so the small-text tail is freshly zero-filled
/// regardless of the source Value's history.
void normalizeSlot(const Value& v, unsigned char* out) {
  std::memset(out, 0, sizeof(Value));
  if (v.isText()) {
    new (out) Value(v.textView());
  } else {
    new (out) Value(v);
  }
  // Deliberately not destroyed: inline alternatives own no heap state,
  // and the variant destructor would scribble its "destroyed" index
  // marker over the image we just took.
}

// ---------------------------------------------------------------------------
// Encoder: value tree -> in-memory sections
// ---------------------------------------------------------------------------

class Encoder {
 public:
  void addRoot(const Value& v) {
    RootRec rec;
    switch (v.kind()) {
      case ValueKind::Nothing:
        rec.kind = uint64_t(RootKind::Nothing);
        break;
      case ValueKind::Number:
        rec.kind = uint64_t(RootKind::Number);
        rec.number = v.asNumber();
        break;
      case ValueKind::Boolean:
        rec.kind = uint64_t(RootKind::Boolean);
        rec.a = v.asBoolean() ? 1 : 0;
        break;
      case ValueKind::Text: {
        const std::string_view text = v.textView();
        rec.kind = uint64_t(RootKind::Text);
        rec.a = blob_.size();
        rec.b = text.size();
        blob_.append(text);
        break;
      }
      case ValueKind::ListRef:
        rec.kind = uint64_t(RootKind::List);
        rec.a = encodeList(v.asList());
        break;
      default:
        throw PurityError(std::string("cannot persist a ") +
                          blocks::valueKindName(v.kind()));
    }
    roots_.push_back(rec);
  }

  void write(SnapshotFileWriter& w) {
    w.beginSection(SectionId::ValueSlots, sizeof(Value), alignof(Value));
    if (!slots_.empty()) w.append(slots_.data(), slots_.size());
    w.endSection();
    w.writeArraySection(SectionId::Lists, lists_);
    std::sort(textPatches_.begin(), textPatches_.end(),
              [](const TextPatch& a, const TextPatch& b) {
                return a.slot < b.slot;
              });
    std::sort(listPatches_.begin(), listPatches_.end(),
              [](const ListPatch& a, const ListPatch& b) {
                return a.slot < b.slot;
              });
    w.writeArraySection(SectionId::TextPatches, textPatches_);
    w.writeArraySection(SectionId::ListPatches, listPatches_);
    w.writeBytesSection(SectionId::TextBlob, blob_.data(), blob_.size());
    w.writeArraySection(SectionId::Roots, roots_);
  }

  std::string& blob() { return blob_; }
  std::vector<RootRec>& roots() { return roots_; }

 private:
  uint64_t encodeList(const ListPtr& list) {
    const List* key = list.get();
    if (const auto it = seen_.find(key); it != seen_.end()) {
      // Shared sublist: on the active encode path it is a cycle (not
      // persistable); otherwise identity sharing is preserved.
      if (std::find(path_.begin(), path_.end(), key) != path_.end()) {
        throw PurityError("cannot persist a cyclic list");
      }
      return it->second;
    }
    const uint64_t index = lists_.size();
    seen_.emplace(key, index);
    const blocks::ItemSpan items = list->items();
    const uint64_t firstSlot = slotCount_;
    lists_.push_back(ListRec{firstSlot, items.size()});
    slotCount_ += items.size();
    slots_.resize(size_t(slotCount_) * sizeof(Value));
    // Inline-kind elements are imaged in place; patched elements (long
    // text, sublists) re-resolve their output address after recursion,
    // which may have grown (reallocated) slots_.
    path_.push_back(key);
    for (uint64_t i = 0; i < items.size(); ++i) {
      const uint64_t slot = firstSlot + i;
      const Value& v = items[size_t(i)];
      switch (v.kind()) {
        case ValueKind::Nothing:
        case ValueKind::Number:
        case ValueKind::Boolean:
          normalizeSlot(v, slotAt(slot));
          break;
        case ValueKind::Text: {
          const std::string_view text = v.textView();
          if (text.size() <= kInlineTextCap) {
            normalizeSlot(v, slotAt(slot));
          } else {
            textPatches_.push_back(TextPatch{slot, blob_.size(), text.size()});
            blob_.append(text);
          }
          break;
        }
        case ValueKind::ListRef:
          listPatches_.push_back(ListPatch{slot, encodeList(v.asList())});
          break;
        default:
          throw PurityError(std::string("cannot persist a ") +
                            blocks::valueKindName(v.kind()));
      }
    }
    path_.pop_back();
    return index;
  }

  unsigned char* slotAt(uint64_t slot) {
    return slots_.data() + size_t(slot) * sizeof(Value);
  }

  std::vector<unsigned char> slots_;  // zero-filled by resize: patched
                                      // slots stay all-zero on disk
  uint64_t slotCount_ = 0;
  std::vector<ListRec> lists_;
  std::vector<TextPatch> textPatches_;
  std::vector<ListPatch> listPatches_;
  std::string blob_;
  std::vector<RootRec> roots_;
  std::unordered_map<const List*, uint64_t> seen_;
  std::vector<const List*> path_;
};

// ---------------------------------------------------------------------------
// Decoder: mapping -> value tree (leaves alias, spines materialize)
// ---------------------------------------------------------------------------

[[noreturn]] void corruptTable(const char* what) {
  throw SubstrateError(std::string("snapshot open: corrupt ") + what);
}

struct Decoder {
  std::shared_ptr<Region> region;
  const Value* slots = nullptr;
  uint64_t slotCount = 0;
  const ListRec* lists = nullptr;
  uint64_t listCount = 0;
  const char* blob = nullptr;
  uint64_t blobSize = 0;
  const RootRec* roots = nullptr;
  uint64_t rootCount = 0;
  std::unordered_map<uint64_t, uint64_t> childAt;  // slot -> child list
  std::vector<bool> isSpine;
  std::vector<ListPtr> decoded;
  std::vector<uint8_t> inProgress;

  explicit Decoder(const std::string& path) : region(Region::map(path)) {
    slots = region->array<Value>(SectionId::ValueSlots, &slotCount);
    lists = region->array<ListRec>(SectionId::Lists, &listCount);
    blob = region->bytes(SectionId::TextBlob, &blobSize);
    roots = region->array<RootRec>(SectionId::Roots, &rootCount);

    for (uint64_t i = 0; i < listCount; ++i) {
      if (lists[i].firstSlot > slotCount ||
          lists[i].slotCount > slotCount - lists[i].firstSlot) {
        corruptTable("list table: slot range out of bounds");
      }
    }

    uint64_t textPatchCount = 0;
    const auto* textPatches =
        region->array<TextPatch>(SectionId::TextPatches, &textPatchCount);
    uint64_t listPatchCount = 0;
    const auto* listPatches =
        region->array<ListPatch>(SectionId::ListPatches, &listPatchCount);

    // Long-text fixups: placement-construct the text Value over its
    // zeroed slot, straight into the private mapping. Registered on the
    // region so the heap TextReps are released before munmap.
    if (textPatchCount > 0) {
      const SectionHeader* slotSection = region->section(SectionId::ValueSlots);
      auto* mutableSlots =
          reinterpret_cast<Value*>(region->mutableBase() + slotSection->offset);
      for (uint64_t i = 0; i < textPatchCount; ++i) {
        const TextPatch& p = textPatches[i];
        if (p.slot >= slotCount) corruptTable("text patch: slot out of bounds");
        if (p.offset > blobSize || p.length > blobSize - p.offset) {
          corruptTable("text patch: blob range out of bounds");
        }
        Value* v = new (mutableSlots + p.slot)
            Value(std::string_view(blob + p.offset, size_t(p.length)));
        region->registerFixup(v);
      }
    }

    isSpine.assign(size_t(listCount), false);
    if (listPatchCount > 0) {
      childAt.reserve(size_t(listPatchCount));
      std::vector<uint64_t> patchSlots;
      patchSlots.reserve(size_t(listPatchCount));
      for (uint64_t i = 0; i < listPatchCount; ++i) {
        const ListPatch& p = listPatches[i];
        if (p.slot >= slotCount) corruptTable("list patch: slot out of bounds");
        if (p.childList >= listCount) {
          corruptTable("list patch: child out of bounds");
        }
        childAt.emplace(p.slot, p.childList);
        patchSlots.push_back(p.slot);
      }
      std::sort(patchSlots.begin(), patchSlots.end());
      for (uint64_t i = 0; i < listCount; ++i) {
        const auto lo = std::lower_bound(patchSlots.begin(), patchSlots.end(),
                                         lists[i].firstSlot);
        isSpine[size_t(i)] =
            lo != patchSlots.end() &&
            *lo < lists[i].firstSlot + lists[i].slotCount;
      }
    }
    decoded.assign(size_t(listCount), nullptr);
    inProgress.assign(size_t(listCount), 0);
  }

  ListPtr decodeList(uint64_t index) {
    if (decoded[size_t(index)]) return decoded[size_t(index)];
    const ListRec& rec = lists[index];
    if (!isSpine[size_t(index)]) {
      // Leaf: alias the mapping. flatShareable holds by construction —
      // the range has no list patches and rings are never persisted.
      decoded[size_t(index)] = List::makeMapped(
          slots + rec.firstSlot, size_t(rec.slotCount), region,
          /*flatShareable=*/true);
      return decoded[size_t(index)];
    }
    if (inProgress[size_t(index)]) {
      corruptTable("list table: cycle");  // the encoder never writes one
    }
    inProgress[size_t(index)] = 1;
    ListPtr list = List::make();
    std::vector<Value>& items = list->mutableItems();
    items.reserve(size_t(rec.slotCount));
    for (uint64_t s = rec.firstSlot; s < rec.firstSlot + rec.slotCount; ++s) {
      if (const auto it = childAt.find(s); it != childAt.end()) {
        items.push_back(Value(decodeList(it->second)));
      } else {
        items.push_back(slots[s]);  // shares TextPtr for fixed-up slots
      }
    }
    inProgress[size_t(index)] = 0;
    decoded[size_t(index)] = std::move(list);
    return decoded[size_t(index)];
  }

  Value rootValue(const RootRec& rec) {
    switch (RootKind(rec.kind)) {
      case RootKind::Nothing:
        return Value();
      case RootKind::Number:
        return Value(rec.number);
      case RootKind::Boolean:
        return Value(rec.a != 0);
      case RootKind::Text:
        if (rec.a > blobSize || rec.b > blobSize - rec.a) {
          corruptTable("root: blob range out of bounds");
        }
        return Value(std::string_view(blob + rec.a, size_t(rec.b)));
      case RootKind::List:
        if (rec.a >= listCount) corruptTable("root: list out of bounds");
        return Value(decodeList(rec.a));
    }
    corruptTable("root: unknown kind");
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Dataset API
// ---------------------------------------------------------------------------

void saveValue(const std::string& path, const Value& root) {
  Encoder encoder;
  encoder.addRoot(root);  // encode first: purity errors precede file I/O
  SnapshotFileWriter writer(path, SnapshotKind::Dataset);
  encoder.write(writer);
  writer.commit();
}

Value loadValue(const std::string& path) {
  Decoder decoder(path);
  if (decoder.region->kind() != SnapshotKind::Dataset) {
    throw SubstrateError("snapshot open (" + path +
                         "): expected a dataset snapshot");
  }
  if (decoder.rootCount != 1) {
    corruptTable("root table: dataset must have exactly one root");
  }
  return decoder.rootValue(decoder.roots[0]);
}

void saveList(const std::string& path, const ListPtr& list) {
  saveValue(path, Value(list));
}

ListPtr loadList(const std::string& path) {
  Value root = loadValue(path);
  if (!root.isList()) {
    throw SubstrateError("snapshot open (" + path +
                         "): root is not a list");
  }
  return root.asList();
}

// ---------------------------------------------------------------------------
// DatasetWriter (streaming)
// ---------------------------------------------------------------------------

DatasetWriter::DatasetWriter(std::string path)
    : writer_(std::make_unique<SnapshotFileWriter>(std::move(path),
                                                   SnapshotKind::Dataset)) {
  writer_->beginSection(SectionId::ValueSlots, sizeof(Value), alignof(Value));
}

DatasetWriter::~DatasetWriter() = default;

void DatasetWriter::append(const Value& item) {
  switch (item.kind()) {
    case ValueKind::Nothing:
    case ValueKind::Number:
    case ValueKind::Boolean:
      writer_->appendValueSlot(item);
      break;
    case ValueKind::Text: {
      const std::string_view text = item.textView();
      if (text.size() <= kInlineTextCap) {
        writer_->appendValueSlot(item);
      } else {
        writer_->appendZeroSlot();
        textPatches_.push_back(TextPatch{count_, blob_.size(), text.size()});
        blob_.append(text);
      }
      break;
    }
    default:
      throw PurityError(std::string("dataset rows must be scalar, not ") +
                        blocks::valueKindName(item.kind()));
  }
  ++count_;
}

void DatasetWriter::appendNumber(double number) {
  writer_->appendValueSlot(Value(number));
  ++count_;
}

void DatasetWriter::commit() {
  if (committed_) return;
  writer_->endSection();
  std::vector<ListRec> lists{ListRec{0, count_}};
  writer_->writeArraySection(SectionId::Lists, lists);
  writer_->writeArraySection(SectionId::TextPatches, textPatches_);
  writer_->writeBytesSection(SectionId::TextBlob, blob_.data(), blob_.size());
  RootRec root;
  root.kind = uint64_t(RootKind::List);
  std::vector<RootRec> roots{root};
  writer_->writeArraySection(SectionId::Roots, roots);
  writer_->commit();
  committed_ = true;
}

// ---------------------------------------------------------------------------
// Project snapshots
// ---------------------------------------------------------------------------

void saveProjectImage(const std::string& path, const ProjectImage& image) {
  Encoder encoder;
  std::string names;
  std::vector<VarRec> table;
  table.reserve(image.vars.size());
  for (const ProjectImage::Var& var : image.vars) {
    VarRec rec;
    rec.owner = var.owner;
    rec.nameOffset = names.size();
    rec.nameLength = var.name.size();
    rec.rootIndex = encoder.roots().size();
    names.append(var.name);
    encoder.addRoot(var.value);
    table.push_back(rec);
  }
  SnapshotFileWriter writer(path, SnapshotKind::Project);
  encoder.write(writer);
  writer.writeBytesSection(SectionId::Names, names.data(), names.size());
  writer.writeArraySection(SectionId::VarTable, table);
  writer.writeBytesSection(SectionId::Xml, image.xml.data(),
                           image.xml.size());
  writer.commit();
}

ProjectImage loadProjectImage(const std::string& path) {
  Decoder decoder(path);
  if (decoder.region->kind() != SnapshotKind::Project) {
    throw SubstrateError("snapshot open (" + path +
                         "): expected a project snapshot");
  }
  uint64_t namesSize = 0;
  const char* names = decoder.region->bytes(SectionId::Names, &namesSize);
  uint64_t varCount = 0;
  const auto* table =
      decoder.region->array<VarRec>(SectionId::VarTable, &varCount);
  uint64_t xmlSize = 0;
  const char* xml = decoder.region->bytes(SectionId::Xml, &xmlSize);

  ProjectImage image;
  image.xml.assign(xml ? xml : "", size_t(xmlSize));
  image.vars.reserve(size_t(varCount));
  for (uint64_t i = 0; i < varCount; ++i) {
    const VarRec& rec = table[i];
    if (rec.nameOffset > namesSize ||
        rec.nameLength > namesSize - rec.nameOffset) {
      corruptTable("variable table: name out of bounds");
    }
    if (rec.rootIndex >= decoder.rootCount) {
      corruptTable("variable table: root out of bounds");
    }
    ProjectImage::Var var;
    var.owner = rec.owner;
    var.name.assign(names + rec.nameOffset, size_t(rec.nameLength));
    var.value = decoder.rootValue(decoder.roots[rec.rootIndex]);
    image.vars.push_back(std::move(var));
  }
  return image;
}

SnapshotInfo inspect(const std::string& path) {
  const auto region = Region::map(path);
  SnapshotInfo info;
  info.kind = region->kind();
  info.fileBytes = region->header().fileBytes;
  if (const SectionHeader* s = region->section(SectionId::ValueSlots)) {
    info.slots = s->block.num_entries;
  }
  if (const SectionHeader* s = region->section(SectionId::Lists)) {
    info.lists = s->block.num_entries;
  }
  return info;
}

}  // namespace psnap::persist
