#include "persist/file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <new>

#include "blocks/value.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace psnap::persist {

namespace {

/// Coalesce small appends into ~256KB writes: slot streaming hands the
/// writer 40-byte Values one at a time.
constexpr size_t kWriteBuffer = 256 * 1024;

constexpr char kZeros[64] = {};

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotFileWriter
// ---------------------------------------------------------------------------

SnapshotFileWriter::SnapshotFileWriter(std::string path, SnapshotKind kind)
    : path_(std::move(path)) {
  fault::inject(fault::Point::SnapshotWriteFailure);
  tempPath_ = path_ + ".tmp." + std::to_string(::getpid());
  fd_ = ::open(tempPath_.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) {
    throw SubstrateError("snapshot write: cannot create " + tempPath_ + ": " +
                         std::strerror(errno));
  }
  buffer_.reserve(kWriteBuffer);
  header_.magic = kMagic;
  header_.version = kFormatVersion;
  header_.kind = uint32_t(kind);
  header_.valueAbi = valueAbiFingerprint();
  // Reserve header + full section table; both are back-patched at commit.
  FileHeader blank;
  writeRaw(&blank, sizeof(blank));
  SectionHeader blankSection;
  for (size_t i = 0; i < kMaxSections; ++i) {
    writeRaw(&blankSection, sizeof(blankSection));
  }
}

SnapshotFileWriter::~SnapshotFileWriter() {
  if (!committed_) abandon();
}

void SnapshotFileWriter::abandon() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    ::unlink(tempPath_.c_str());
  }
}

void SnapshotFileWriter::fail(const std::string& what) {
  abandon();
  throw SubstrateError("snapshot write (" + path_ + "): " + what);
}

void SnapshotFileWriter::writeRaw(const void* data, size_t bytes) {
  const char* p = static_cast<const char*>(data);
  if (buffer_.size() + bytes > kWriteBuffer && !buffer_.empty()) {
    // Flush the coalescing buffer.
    const char* b = buffer_.data();
    size_t left = buffer_.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, b, left);
      if (n < 0) fail(std::string("write failed: ") + std::strerror(errno));
      b += n;
      left -= size_t(n);
    }
    buffer_.clear();
  }
  if (bytes >= kWriteBuffer) {
    while (bytes > 0) {
      const ssize_t n = ::write(fd_, p, bytes);
      if (n < 0) fail(std::string("write failed: ") + std::strerror(errno));
      p += n;
      bytes -= size_t(n);
      offset_ += size_t(n);
    }
    return;
  }
  buffer_.insert(buffer_.end(), p, p + bytes);
  offset_ += bytes;
}

void SnapshotFileWriter::padTo(uint64_t align) {
  if (align <= 1) return;
  const uint64_t rem = offset_ % align;
  if (rem != 0) writeRaw(kZeros, size_t(align - rem));
}

void SnapshotFileWriter::beginSection(SectionId id, uint64_t entrySize,
                                      uint64_t entryAlign) {
  fault::inject(fault::Point::SnapshotWriteFailure);
  if (sectionOpen_) fail("beginSection while a section is open");
  if (sectionCount_ >= kMaxSections) fail("section table full");
  if (entryAlign > sizeof(kZeros)) fail("entry alignment too large");
  padTo(entryAlign);
  SectionHeader& s = sections_[sectionCount_];
  s.id = uint64_t(id);
  s.offset = offset_;
  s.block.entry_size = entrySize;
  s.block.entry_align = entryAlign;
  sectionStart_ = offset_;
  sectionOpen_ = true;
}

void SnapshotFileWriter::append(const void* data, size_t bytes) {
  if (!sectionOpen_) fail("append outside a section");
  writeRaw(data, bytes);
}

void SnapshotFileWriter::endSection() {
  if (!sectionOpen_) fail("endSection without beginSection");
  SectionHeader& s = sections_[sectionCount_];
  const uint64_t byteSize = offset_ - sectionStart_;
  if (s.block.entry_size != 0 && byteSize % s.block.entry_size != 0) {
    fail("section payload is not a whole number of entries");
  }
  s.block.byte_size = byteSize;
  s.block.num_entries =
      s.block.entry_size ? byteSize / s.block.entry_size : byteSize;
  ++sectionCount_;
  sectionOpen_ = false;
}

void SnapshotFileWriter::appendValueSlot(const blocks::Value& value) {
  // Normalized slot image: zeroed scratch + placement-copy, so variant
  // padding and small-text tails are deterministic (small texts are
  // zero-filled at construction; see Value's text constructors).
  alignas(blocks::Value) unsigned char scratch[sizeof(blocks::Value)];
  std::memset(scratch, 0, sizeof(scratch));
  slotImageFence(scratch);
  auto* v = new (scratch) blocks::Value(value);
  slotImageFence(scratch);
  append(scratch, sizeof(scratch));
  v->~Value();
}

void SnapshotFileWriter::appendZeroSlot() {
  const unsigned char zeros[sizeof(blocks::Value)] = {};
  append(zeros, sizeof(zeros));
}

void SnapshotFileWriter::commit() {
  fault::inject(fault::Point::SnapshotWriteFailure);
  if (sectionOpen_) fail("commit with a section still open");
  if (committed_) return;
  // Flush the coalescing buffer.
  const char* b = buffer_.data();
  size_t left = buffer_.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, b, left);
    if (n < 0) fail(std::string("write failed: ") + std::strerror(errno));
    b += n;
    left -= size_t(n);
  }
  buffer_.clear();
  header_.sectionCount = sectionCount_;
  header_.fileBytes = offset_;
  header_.headerCheck = headerCheck(header_);
  if (::lseek(fd_, 0, SEEK_SET) != 0) {
    fail(std::string("seek failed: ") + std::strerror(errno));
  }
  if (::write(fd_, &header_, sizeof(header_)) !=
      ssize_t(sizeof(header_))) {
    fail(std::string("header write failed: ") + std::strerror(errno));
  }
  if (::write(fd_, sections_, sizeof(sections_)) !=
      ssize_t(sizeof(sections_))) {
    fail(std::string("section table write failed: ") + std::strerror(errno));
  }
  if (::fsync(fd_) != 0) {
    fail(std::string("fsync failed: ") + std::strerror(errno));
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    ::unlink(tempPath_.c_str());
    throw SubstrateError("snapshot write (" + path_ +
                         "): close failed: " + std::strerror(errno));
  }
  fd_ = -1;
  if (::rename(tempPath_.c_str(), path_.c_str()) != 0) {
    ::unlink(tempPath_.c_str());
    throw SubstrateError("snapshot write (" + path_ +
                         "): rename failed: " + std::strerror(errno));
  }
  committed_ = true;
}

// ---------------------------------------------------------------------------
// Region
// ---------------------------------------------------------------------------

namespace {
constexpr uint64_t kTableBytes =
    sizeof(FileHeader) + kMaxSections * sizeof(SectionHeader);

[[noreturn]] void corrupt(const std::string& path, const std::string& what) {
  throw SubstrateError("snapshot open (" + path + "): " + what);
}
}  // namespace

std::shared_ptr<Region> Region::map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw SubstrateError("snapshot open (" + path +
                         "): " + std::strerror(errno));
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    corrupt(path, std::string("stat failed: ") + std::strerror(err));
  }
  if (uint64_t(st.st_size) < kTableBytes) {
    ::close(fd);
    corrupt(path, "truncated: file smaller than the header");
  }
  try {
    fault::inject(fault::Point::MmapFailure);
  } catch (...) {
    ::close(fd);
    throw;
  }
  // MAP_PRIVATE + PROT_WRITE: reads share page-cache pages across every
  // open of this file; the loader's few fixup writes land in private
  // copies and never reach disk.
  void* addr = ::mmap(nullptr, size_t(st.st_size), PROT_READ | PROT_WRITE,
                      MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (addr == MAP_FAILED) {
    throw SubstrateError("snapshot open (" + path +
                         "): mmap failed: " + std::strerror(errno));
  }
  auto region = std::shared_ptr<Region>(new Region());
  region->base_ = static_cast<char*>(addr);
  region->size_ = size_t(st.st_size);

  FileHeader header;
  std::memcpy(&header, region->base_, sizeof(header));
  if (header.magic != kMagic) corrupt(path, "bad magic: not a snapshot file");
  if (header.version != kFormatVersion) {
    corrupt(path, "unsupported format version " +
                      std::to_string(header.version));
  }
  if (header.headerCheck != headerCheck(header)) {
    corrupt(path, "corrupt header: self-check mismatch");
  }
  if (header.valueAbi != valueAbiFingerprint()) {
    corrupt(path,
            "value ABI mismatch: snapshot written by an incompatible build");
  }
  if (header.fileBytes != uint64_t(st.st_size)) {
    corrupt(path, "truncated: header records " +
                      std::to_string(header.fileBytes) + " bytes, file has " +
                      std::to_string(st.st_size));
  }
  if (header.kind != uint32_t(SnapshotKind::Dataset) &&
      header.kind != uint32_t(SnapshotKind::Project)) {
    corrupt(path, "unknown snapshot kind " + std::to_string(header.kind));
  }
  if (header.sectionCount > kMaxSections) {
    corrupt(path, "corrupt section table: count " +
                      std::to_string(header.sectionCount));
  }
  region->header_ = header;
  region->sections_ =
      reinterpret_cast<const SectionHeader*>(region->base_ +
                                             sizeof(FileHeader));
  for (uint64_t i = 0; i < header.sectionCount; ++i) {
    const SectionHeader& s = region->sections_[i];
    if (s.block.entry_size != 0 &&
        s.block.num_entries != s.block.byte_size / s.block.entry_size) {
      corrupt(path, "corrupt section: entry count/size mismatch");
    }
    if (s.block.entry_align == 0 || s.offset % s.block.entry_align != 0) {
      corrupt(path, "corrupt section: misaligned payload");
    }
    if (s.offset < kTableBytes || s.offset > header.fileBytes ||
        s.block.byte_size > header.fileBytes - s.offset) {
      corrupt(path, "corrupt section: payload out of bounds");
    }
  }
  return region;
}

Region::~Region() {
  // Fixed-up Values own heap payloads (TextReps); release them before the
  // pages under them vanish.
  for (blocks::Value* v : fixups_) v->~Value();
  fixups_.clear();
  if (base_) ::munmap(base_, size_);
}

const SectionHeader* Region::section(SectionId id) const {
  for (uint64_t i = 0; i < header_.sectionCount; ++i) {
    if (sections_[i].id == uint64_t(id)) return &sections_[i];
  }
  return nullptr;
}

void Region::checkEntryShape(const SectionHeader& s, uint64_t entrySize,
                             uint64_t entryAlign) const {
  if (s.block.entry_size != entrySize || s.block.entry_align < entryAlign) {
    throw SubstrateError(
        "snapshot open: corrupt section: entry shape mismatch (recorded " +
        std::to_string(s.block.entry_size) + "/" +
        std::to_string(s.block.entry_align) + ", expected " +
        std::to_string(entrySize) + "/" + std::to_string(entryAlign) + ")");
  }
}

const char* Region::bytes(SectionId id, uint64_t* size) const {
  const SectionHeader* s = section(id);
  if (!s) {
    *size = 0;
    return nullptr;
  }
  *size = s->block.byte_size;
  return base_ + s->offset;
}

}  // namespace psnap::persist
