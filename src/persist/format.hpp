// On-disk layout of psnap snapshots (datasets and whole projects).
//
// A snapshot file is a fixed-size header, a section table, and a series
// of aligned flat sections — the osrm-backend typed-block idea
// ({num_entries, byte_size, entry_size, entry_align} descriptors over
// arrays of PODs) applied to the COW value plane. The load path never
// parses: the file is mmap'd and the `ValueSlots` section *is* the list
// item buffer, aliased directly by mmap-backed `List::Buffer`s
// (blocks/value.hpp). That aliasing is legal because of two write-time
// guarantees:
//
//   * every slot range a List aliases is sublist-free ("leaf" lists;
//     spines with ListRef elements are materialized at load), preserving
//     PR 4's shared-buffers-are-flat invariant; and
//   * every slot is a *normalized* in-memory `blocks::Value`: written by
//     placement-constructing into zeroed scratch, so padding is
//     deterministic and inline kinds (nothing, number, boolean,
//     small-text) round-trip by memcpy. Kinds that carry heap pointers
//     (long text, sublists) are written as zeroed slots plus a patch
//     table entry and reconstructed at load — long-text slots by
//     placement-new *into the (MAP_PRIVATE) mapping*, touching only the
//     pages that hold them.
//
// Because raw Value bytes are ABI-specific (std::variant layout), the
// header carries a runtime fingerprint of the Value representation; a
// mismatch (different compiler/stdlib/build) is rejected with a typed
// error instead of misreading slots.
#pragma once

#include <cstddef>
#include <cstdint>

namespace psnap::persist {

/// "psnapblk" in little-endian bytes.
inline constexpr uint64_t kMagic = 0x6b6c6270616e7370ULL;
inline constexpr uint32_t kFormatVersion = 1;

/// Hard cap on sections per file: the table is reserved up front so the
/// writer can stream payloads without knowing the final count.
inline constexpr size_t kMaxSections = 16;

enum class SnapshotKind : uint32_t {
  Dataset = 1,  ///< a single root value (typically one flat list)
  Project = 2,  ///< XML skeleton + the variable values as a value tree
};

/// osrm-style typed-block descriptor: enough to bounds-check and index a
/// section as a flat array without knowing the element type at runtime.
struct Block {
  uint64_t num_entries = 0;
  uint64_t byte_size = 0;
  uint64_t entry_size = 0;
  uint64_t entry_align = 1;
};

template <typename T>
constexpr Block makeBlock(uint64_t numEntries) {
  static_assert(sizeof(T) % alignof(T) == 0,
                "aligned T* can't be used as an array pointer");
  return Block{numEntries, sizeof(T) * numEntries, sizeof(T), alignof(T)};
}

enum class SectionId : uint64_t {
  ValueSlots = 1,   ///< blocks::Value[] — raw normalized slots
  Lists = 2,        ///< ListRec[] — one per list, ids are indices
  TextPatches = 3,  ///< TextPatch[] — long-text slots, ascending by slot
  ListPatches = 4,  ///< ListPatch[] — sublist slots, ascending by slot
  TextBlob = 5,     ///< char[] — concatenated long-text bytes
  Roots = 6,        ///< RootRec[] — the snapshot's root values
  Names = 7,        ///< char[] — auxiliary name blob (project variables)
  VarTable = 8,     ///< VarRec[] — variable manifest (project snapshots)
  Xml = 9,          ///< char[] — project XML skeleton
};

struct SectionHeader {
  uint64_t id = 0;      ///< SectionId, 0 = unused table entry
  uint64_t offset = 0;  ///< absolute file offset of the payload
  Block block;
};

struct FileHeader {
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t kind = 0;          ///< SnapshotKind
  uint64_t valueAbi = 0;      ///< runtime Value-layout fingerprint
  uint64_t sectionCount = 0;
  uint64_t fileBytes = 0;     ///< total file size (truncation check)
  uint64_t headerCheck = 0;   ///< mix of all fields above
};

/// One list's slot range in ValueSlots. A list is a "leaf" when its range
/// has no ListPatch entries: leaves alias the mapping; spines are
/// materialized into owned buffers at load.
struct ListRec {
  uint64_t firstSlot = 0;
  uint64_t slotCount = 0;
};

/// A slot holding text longer than the Value-inline capacity: the slot is
/// zeroed on disk and rebuilt at load from the blob range.
struct TextPatch {
  uint64_t slot = 0;    ///< absolute index into ValueSlots
  uint64_t offset = 0;  ///< into TextBlob
  uint64_t length = 0;
};

/// A slot holding a sublist reference.
struct ListPatch {
  uint64_t slot = 0;       ///< absolute index into ValueSlots
  uint64_t childList = 0;  ///< index into Lists
};

enum class RootKind : uint64_t {
  Nothing = 0,
  Number = 1,
  Boolean = 2,
  Text = 3,  ///< a/b = offset/length into TextBlob (any size)
  List = 4,  ///< a = index into Lists
};

struct RootRec {
  uint64_t kind = 0;  ///< RootKind
  uint64_t a = 0;
  uint64_t b = 0;
  double number = 0;
};

/// Variable manifest entry for project snapshots: which owner
/// (0 = project globals, 1+n = sprite n) declares the name at
/// Names[nameOffset, nameLength), with its value in Roots[rootIndex].
struct VarRec {
  uint64_t owner = 0;
  uint64_t nameOffset = 0;
  uint64_t nameLength = 0;
  uint64_t rootIndex = 0;
};

/// Compiler fence around a slot image. A normalized slot is built by
/// zero-filling scratch storage and placement-constructing a Value into
/// it; without the fence the optimizer dead-store-eliminates the
/// zero-fill across the construction (observed at -O3), leaking
/// indeterminate stack bytes into the padding that gets hashed or
/// written to disk — which made the ABI fingerprint differ from process
/// to process of the *same* binary. Pin the image before and after
/// construction so the zeros and the constructed bytes are both real.
inline void slotImageFence(const void* image) {
  asm volatile("" : : "r"(image) : "memory");
}

/// Fingerprint of the in-memory blocks::Value layout: size, alignment,
/// and the normalized byte patterns of every inline kind. Computed once
/// per process; a file whose fingerprint differs was written by an
/// incompatible build and cannot be aliased.
uint64_t valueAbiFingerprint();

/// The header self-check: FNV-1a over every field except headerCheck.
uint64_t headerCheck(const FileHeader& header);

}  // namespace psnap::persist
