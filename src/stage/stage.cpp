#include "stage/stage.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace psnap::stage {

using blocks::Environment;
using blocks::EnvPtr;
using blocks::ScriptPtr;

namespace {
constexpr double kPi = 3.14159265358979323846;
}

Sprite::Sprite(Stage* stage, std::string name)
    : stage_(stage),
      name_(std::move(name)),
      variables_(Environment::make(stage->globals())) {}

void Sprite::moveSteps(double steps) {
  // Snap! heading: 0 = up, 90 = right; convert to radians accordingly.
  const double radians = (90.0 - heading_) * kPi / 180.0;
  x_ += steps * std::cos(radians);
  y_ += steps * std::sin(radians);
}

void Sprite::turnBy(double degrees) {
  heading_ = std::fmod(heading_ + degrees, 360.0);
  if (heading_ < 0) heading_ += 360.0;
}

void Sprite::setHeading(double degrees) {
  heading_ = std::fmod(degrees, 360.0);
  if (heading_ < 0) heading_ += 360.0;
}

void Sprite::gotoXY(double x, double y) {
  x_ = x;
  y_ = y;
}

bool Sprite::touching(const std::string& name) const {
  // Circle collision against the named sprite and its clones; hidden
  // sprites never touch anything.
  if (!visible_) return false;
  for (const auto& other : stage_->sprites_) {
    if (other.get() == this || !other->visible()) continue;
    const bool nameMatches =
        other->name() == name ||
        (other->isClone() && other->cloneParent_ &&
         other->cloneParent_->name() == name);
    if (!nameMatches) continue;
    const double dx = other->x() - x_;
    const double dy = other->y() - y_;
    const double reach = touchRadius_ + other->touchRadius_;
    if (dx * dx + dy * dy <= reach * reach) return true;
  }
  return false;
}

void Sprite::addScript(ScriptPtr script) {
  if (!script || script->empty()) {
    throw Error("a sprite script must contain at least a hat block");
  }
  const blocks::Block& hat = *script->at(0);
  HatScript entry;
  if (hat.opcode() == "receiveGo") {
    entry.event = "go";
  } else if (hat.opcode() == "receiveKey") {
    entry.event = "key";
    entry.argument = hat.input(0).literalValue().asText();
  } else if (hat.opcode() == "receiveMessage") {
    entry.event = "message";
    entry.argument = hat.input(0).literalValue().asText();
  } else if (hat.opcode() == "receiveCloneStart") {
    entry.event = "clone";
  } else {
    throw Error("script must start with a hat block, got " + hat.opcode());
  }
  std::vector<blocks::BlockPtr> body(script->blocks().begin() + 1,
                                     script->blocks().end());
  entry.body = blocks::Script::make(std::move(body));
  scripts_.push_back(std::move(entry));
}

Stage::Stage(sched::ThreadManager* scheduler)
    : scheduler_(scheduler), globals_(Environment::make()) {
  if (!scheduler_) throw Error("Stage requires a ThreadManager");
  sched::StageHooks hooks;
  hooks.cloneSprite = [this](vm::SpriteApi* original,
                             const std::string& target) {
    return cloneHook(original, target);
  };
  hooks.destroyClone = [this](vm::SpriteApi* clone) {
    destroyCloneHook(clone);
  };
  hooks.startListeners = [this](const std::string& message) {
    return broadcastHook(message);
  };
  scheduler_->setStageHooks(std::move(hooks));
}

Sprite& Stage::addSprite(const std::string& name) {
  if (findSprite(name)) throw Error("duplicate sprite name " + name);
  sprites_.push_back(std::make_unique<Sprite>(this, name));
  return *sprites_.back();
}

Sprite* Stage::findSprite(const std::string& name) {
  for (auto& sprite : sprites_) {
    if (sprite->name() == name) return sprite.get();
  }
  return nullptr;
}

std::vector<Sprite*> Stage::sprites() {
  std::vector<Sprite*> out;
  out.reserve(sprites_.size());
  for (auto& sprite : sprites_) out.push_back(sprite.get());
  return out;
}

size_t Stage::cloneCount() const {
  return static_cast<size_t>(
      std::count_if(sprites_.begin(), sprites_.end(),
                    [](const auto& s) { return s->isClone(); }));
}

void Stage::startScript(Sprite& sprite, const ScriptPtr& body) {
  // Each activation gets a fresh script-variable frame on top of the
  // sprite's variables.
  scheduler_->spawnScript(body, Environment::make(sprite.variables()),
                          &sprite);
}

void Stage::greenFlag() {
  for (auto& sprite : sprites_) {
    for (const Sprite::HatScript& hat : sprite->scripts()) {
      if (hat.event == "go") startScript(*sprite, hat.body);
    }
  }
}

void Stage::keyPressed(const std::string& key) {
  for (auto& sprite : sprites_) {
    for (const Sprite::HatScript& hat : sprite->scripts()) {
      if (hat.event == "key" && hat.argument == key) {
        startScript(*sprite, hat.body);
      }
    }
  }
}

void Stage::stopAll() {
  scheduler_->stopAll();
  sprites_.erase(std::remove_if(sprites_.begin(), sprites_.end(),
                                [](const auto& s) { return s->isClone(); }),
                 sprites_.end());
}

Sprite* Stage::makeClone(Sprite* original) {
  if (!original) throw Error("cannot clone a null sprite");
  ++cloneCounter_;
  auto clone = std::make_unique<Sprite>(
      this, original->name() + "#" + std::to_string(cloneCounter_));
  clone->isClone_ = true;
  clone->cloneParent_ = original;
  clone->x_ = original->x_;
  clone->y_ = original->y_;
  clone->heading_ = original->heading_;
  clone->costume_ = original->costume_;
  clone->visible_ = original->visible_;
  clone->touchRadius_ = original->touchRadius_;
  clone->scripts_ = original->scripts_;
  // Clones copy the *values* of the parent's sprite-local variables.
  for (const std::string& name : original->variables_->localNames()) {
    clone->variables_->declare(name, original->variables_->get(name));
  }
  Sprite* raw = clone.get();
  sprites_.push_back(std::move(clone));
  for (const Sprite::HatScript& hat : raw->scripts()) {
    if (hat.event == "clone") startScript(*raw, hat.body);
  }
  return raw;
}

vm::SpriteApi* Stage::cloneHook(vm::SpriteApi* original,
                                const std::string& targetName) {
  Sprite* target = nullptr;
  if (!targetName.empty()) {
    target = findSprite(targetName);
    if (!target) throw Error("no sprite named " + targetName + " to clone");
  } else {
    target = static_cast<Sprite*>(original);
    if (!target) throw Error("create clone of myself requires a sprite");
  }
  return makeClone(target);
}

void Stage::destroyCloneHook(vm::SpriteApi* clone) {
  sprites_.erase(std::remove_if(sprites_.begin(), sprites_.end(),
                                [clone](const auto& s) {
                                  return s.get() == clone && s->isClone();
                                }),
                 sprites_.end());
}

std::vector<uint64_t> Stage::broadcastHook(const std::string& message) {
  std::vector<uint64_t> ids;
  // Snapshot: broadcasts received by the sprites (and clones) that exist
  // when the broadcast fires.
  std::vector<Sprite*> current = sprites();
  for (Sprite* sprite : current) {
    for (const Sprite::HatScript& hat : sprite->scripts()) {
      if (hat.event == "message" && hat.argument == message) {
        auto handle = scheduler_->spawnScript(
            hat.body, Environment::make(sprite->variables()), sprite);
        ids.push_back(handle.process->id());
      }
    }
  }
  return ids;
}

std::string Stage::renderFrame() const {
  std::string out;
  out += "t=" + strings::formatNumber(scheduler_->timerSeconds()) + "\n";
  for (const auto& sprite : sprites_) {
    out += sprite->name() + " @(" + strings::formatNumber(sprite->x()) +
           "," + strings::formatNumber(sprite->y()) + ") dir " +
           strings::formatNumber(sprite->heading()) + " costume '" +
           sprite->costume() + "'";
    if (!sprite->sayText().empty()) {
      out += " says \"" + sprite->sayText() + "\"";
    }
    out += "\n";
  }
  return out;
}

}  // namespace psnap::stage
