// The stage: sprites, clones, costumes, say-bubbles, and event dispatch.
//
// This is the C++ stand-in for Snap!'s stage area (paper Fig. 2): a project
// holds sprites, each sprite holds scripts headed by hat blocks, and events
// (green flag, key presses, broadcasts, clone starts) activate those
// scripts as concurrent processes on the ThreadManager. Sprite *cloning* is
// the mechanism the paper's parallelForEach uses to visualize parallelism
// (the three Pitcher clones of Fig. 9).
//
// Rendering is textual: renderFrame() emits one line per sprite with its
// position, heading, costume, and say-bubble — the experiment's observable
// is the timer value and sprite states, not pixels.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "blocks/block.hpp"
#include "blocks/environment.hpp"
#include "sched/thread_manager.hpp"
#include "vm/host.hpp"

namespace psnap::stage {

class Stage;

/// A sprite (or a clone of one). Implements the motion/looks surface the
/// interpreter's primitives target.
class Sprite : public vm::SpriteApi {
 public:
  Sprite(Stage* stage, std::string name);

  // --- vm::SpriteApi -------------------------------------------------------
  const std::string& name() const override { return name_; }
  bool isClone() const override { return isClone_; }
  double x() const override { return x_; }
  double y() const override { return y_; }
  double heading() const override { return heading_; }
  void moveSteps(double steps) override;
  void turnBy(double degrees) override;
  void setHeading(double degrees) override;
  void gotoXY(double x, double y) override;
  void changeX(double dx) override { x_ += dx; }
  void changeY(double dy) override { y_ += dy; }
  void setCostume(const std::string& name) override { costume_ = name; }
  const std::string& costume() const override { return costume_; }
  void setVisible(bool visible) override { visible_ = visible; }
  bool visible() const override { return visible_; }
  bool touching(const std::string& name) const override;
  /// Collision radius used by `touching` (default 30 units).
  void setTouchRadius(double radius) { touchRadius_ = radius; }
  void sayBubble(const std::string& text) override { sayText_ = text; }
  void thinkBubble(const std::string& text) override { sayText_ = text; }
  const blocks::EnvPtr& variables() override { return variables_; }

  // --- scripts ---------------------------------------------------------------
  /// Attach a script whose first block must be a hat (receiveGo,
  /// receiveKey, receiveMessage, receiveCloneStart).
  void addScript(blocks::ScriptPtr script);

  struct HatScript {
    std::string event;        ///< "go", "key", "message", "clone"
    std::string argument;     ///< key name / message text
    blocks::ScriptPtr body;   ///< blocks below the hat
  };
  const std::vector<HatScript>& scripts() const { return scripts_; }

  const std::string& sayText() const { return sayText_; }
  Sprite* cloneParent() const { return cloneParent_; }

 private:
  friend class Stage;

  Stage* stage_;
  std::string name_;
  double x_ = 0;
  double y_ = 0;
  double heading_ = 90;  // Snap! convention: 90 = facing right
  std::string costume_ = "default";
  std::string sayText_;
  bool visible_ = true;
  double touchRadius_ = 30;
  blocks::EnvPtr variables_;
  std::vector<HatScript> scripts_;
  bool isClone_ = false;
  Sprite* cloneParent_ = nullptr;
};

/// The project stage: owns the sprites, wires clone/broadcast hooks into
/// the scheduler, and fires user events.
class Stage {
 public:
  explicit Stage(sched::ThreadManager* scheduler);

  sched::ThreadManager& scheduler() { return *scheduler_; }

  /// Project-global variables (parent scope of every sprite's variables).
  const blocks::EnvPtr& globals() const { return globals_; }

  Sprite& addSprite(const std::string& name);
  Sprite* findSprite(const std::string& name);
  /// All sprites including live clones, in creation order.
  std::vector<Sprite*> sprites();
  size_t spriteCount() const { return sprites_.size(); }
  size_t cloneCount() const;

  // --- events ---------------------------------------------------------------
  /// The green start flag: activates every receiveGo script of every
  /// sprite (paper Fig. 3's top script).
  void greenFlag();
  /// A key press: activates matching receiveKey scripts (the dragon's
  /// turn-left/turn-right scripts of Fig. 3).
  void keyPressed(const std::string& key);
  /// The red stop button: terminates all processes and removes clones.
  void stopAll();

  /// Clone `original` and start its when-I-start-as-a-clone scripts. The
  /// clone copies position, heading, costume, and the *values* of the
  /// sprite-local variables.
  Sprite* makeClone(Sprite* original);

  /// Render the current stage state as text, one line per sprite.
  std::string renderFrame() const;

 private:
  friend class Sprite;

  vm::SpriteApi* cloneHook(vm::SpriteApi* original,
                           const std::string& targetName);
  void destroyCloneHook(vm::SpriteApi* clone);
  std::vector<uint64_t> broadcastHook(const std::string& message);

  void startScript(Sprite& sprite, const blocks::ScriptPtr& body);

  sched::ThreadManager* scheduler_;
  blocks::EnvPtr globals_;
  std::vector<std::unique_ptr<Sprite>> sprites_;
  uint64_t cloneCounter_ = 0;
};

}  // namespace psnap::stage
