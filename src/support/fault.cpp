#include "support/fault.hpp"

#include <chrono>
#include <string>
#include <thread>

#include "support/error.hpp"

namespace psnap::fault {

namespace detail {
std::atomic<bool> gArmed{false};
}  // namespace detail

namespace {

// The live config, one relaxed atomic per field. arm() cannot assume
// true quiescence — the pool's worker loops evaluate their stall point
// whenever they are awake — so a reader racing an arm() must see a
// well-defined (possibly mixed old/new) value per field rather than a
// torn struct. Mixed fields cost at most one hybrid draw; the firing
// sequence is pinned by the seed for every draw after the arm settles.
struct AtomicConfig {
  std::atomic<uint64_t> seed{1};
  std::atomic<uint32_t> rateNumerator{1};
  std::atomic<uint32_t> rateDenominator{4};
  std::atomic<uint32_t> pointMask{0};
  std::atomic<uint32_t> stallMicros{500};
  std::atomic<uint64_t> targetTag{0};
};
AtomicConfig gConfig;
std::atomic<uint64_t> gEvaluated[kPointCount];
std::atomic<uint64_t> gFired[kPointCount];

/// splitmix64 finalizer — the same generator support/rng.hpp seeds with,
/// giving platform-independent draws.
uint64_t mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* pointName(Point point) {
  switch (point) {
    case Point::TaskThrow:           return "task-throw";
    case Point::WorkerStall:         return "worker-stall";
    case Point::TransferFailure:     return "transfer-failure";
    case Point::PoolSaturation:      return "pool-saturation";
    case Point::SessionAdmitFailure: return "session-admit-failure";
    case Point::TenantStall:         return "tenant-stall";
    case Point::CompletionDrop:      return "completion-drop";
    case Point::NativeCompileFailure:return "native-compile-failure";
    case Point::SnapshotWriteFailure:return "snapshot-write-failure";
    case Point::MmapFailure:         return "mmap-failure";
    case Point::CheckpointWriteFailure: return "checkpoint-write-failure";
    case Point::RestartStorm:        return "restart-storm";
    case Point::RecoveryCorruption:  return "recovery-corruption";
  }
  return "unknown";
}

void arm(const Config& config) {
  disarm();
  gConfig.seed.store(config.seed, std::memory_order_relaxed);
  gConfig.rateNumerator.store(config.rateNumerator, std::memory_order_relaxed);
  gConfig.rateDenominator.store(
      config.rateDenominator == 0 ? 1 : config.rateDenominator,
      std::memory_order_relaxed);
  gConfig.pointMask.store(config.pointMask, std::memory_order_relaxed);
  gConfig.stallMicros.store(config.stallMicros, std::memory_order_relaxed);
  gConfig.targetTag.store(config.targetTag, std::memory_order_relaxed);
  for (size_t i = 0; i < kPointCount; ++i) {
    gEvaluated[i].store(0, std::memory_order_relaxed);
    gFired[i].store(0, std::memory_order_relaxed);
  }
  detail::gArmed.store(true, std::memory_order_release);
}

void disarm() { detail::gArmed.store(false, std::memory_order_release); }

bool armed() { return detail::gArmed.load(std::memory_order_acquire); }

uint64_t firedCount(Point point) {
  return gFired[size_t(point)].load(std::memory_order_relaxed);
}

uint64_t evaluatedCount(Point point) {
  return gEvaluated[size_t(point)].load(std::memory_order_relaxed);
}

namespace detail {

void evaluate(Point point, uint64_t tag) {
  const size_t index = size_t(point);
  const uint64_t sequence =
      gEvaluated[index].fetch_add(1, std::memory_order_relaxed);
  if ((gConfig.pointMask.load(std::memory_order_relaxed) & maskOf(point)) == 0)
    return;
  // Targeted arming: a non-zero targetTag fires only on the matching tag,
  // so untagged sites (and every other tenant) stay fault-free.
  const uint64_t target = gConfig.targetTag.load(std::memory_order_relaxed);
  if (target != 0 && tag != target) return;
  const uint64_t draw = mix(gConfig.seed.load(std::memory_order_relaxed) ^
                            (uint64_t(index) << 56) ^ sequence);
  if (draw % gConfig.rateDenominator.load(std::memory_order_relaxed) >=
      gConfig.rateNumerator.load(std::memory_order_relaxed))
    return;
  gFired[index].fetch_add(1, std::memory_order_relaxed);
  if (point == Point::WorkerStall || point == Point::CompletionDrop) {
    // Sleep-type points: CompletionDrop fires at the completion-dispatch
    // site, where a throw would lose the wakeup forever — it may only
    // delay the callback, never drop it.
    std::this_thread::sleep_for(std::chrono::microseconds(
        gConfig.stallMicros.load(std::memory_order_relaxed)));
    return;
  }
  throw SubstrateError(std::string("injected fault: ") + pointName(point) +
                       " #" + std::to_string(sequence));
}

}  // namespace detail

}  // namespace psnap::fault
