#include "support/error.hpp"

namespace psnap {

ErrorClass classifyError(const std::exception_ptr& error) {
  if (!error) return ErrorClass::None;
  try {
    std::rethrow_exception(error);
  } catch (const TimeoutError&) {
    return ErrorClass::Timeout;
  } catch (const CancelledError&) {
    return ErrorClass::Cancelled;
  } catch (const RestartsExhaustedError&) {
    return ErrorClass::RestartsExhausted;
  } catch (const SubstrateError&) {
    return ErrorClass::Substrate;
  } catch (const TypeError&) {
    return ErrorClass::Type;
  } catch (const IndexError&) {
    return ErrorClass::Index;
  } catch (const BlockError&) {
    return ErrorClass::Block;
  } catch (const PurityError&) {
    return ErrorClass::Purity;
  } catch (const CodegenError&) {
    return ErrorClass::Codegen;
  } catch (const ParseError&) {
    return ErrorClass::Parse;
  } catch (const Error&) {
    return ErrorClass::Generic;
  } catch (...) {
    return ErrorClass::Foreign;
  }
}

const char* errorClassName(ErrorClass errorClass) {
  switch (errorClass) {
    case ErrorClass::None:      return "None";
    case ErrorClass::Generic:   return "Error";
    case ErrorClass::Type:      return "TypeError";
    case ErrorClass::Index:     return "IndexError";
    case ErrorClass::Block:     return "BlockError";
    case ErrorClass::Purity:    return "PurityError";
    case ErrorClass::Codegen:   return "CodegenError";
    case ErrorClass::Parse:     return "ParseError";
    case ErrorClass::Substrate: return "SubstrateError";
    case ErrorClass::Timeout:   return "TimeoutError";
    case ErrorClass::Cancelled: return "CancelledError";
    case ErrorClass::RestartsExhausted: return "RestartsExhaustedError";
    case ErrorClass::Foreign:   return "ForeignError";
  }
  return "Error";
}

bool isSubstrateClass(ErrorClass errorClass) {
  return errorClass == ErrorClass::Substrate ||
         errorClass == ErrorClass::Timeout ||
         errorClass == ErrorClass::Cancelled ||
         errorClass == ErrorClass::RestartsExhausted;
}

bool isRetryableClass(ErrorClass errorClass) {
  return errorClass == ErrorClass::Substrate;
}

namespace {
/// Strip the "<prefix>: " a constructor would re-add, so a message that
/// round-trips through (class, string) form is not double-prefixed.
std::string stripPrefix(const std::string& message, const char* prefix) {
  const size_t n = std::char_traits<char>::length(prefix);
  if (message.compare(0, n, prefix) == 0) return message.substr(n);
  return message;
}

const char* classPrefix(ErrorClass errorClass) {
  switch (errorClass) {
    case ErrorClass::Type:      return "type error: ";
    case ErrorClass::Index:     return "index error: ";
    case ErrorClass::Block:     return "block error: ";
    case ErrorClass::Purity:    return "purity error: ";
    case ErrorClass::Codegen:   return "codegen error: ";
    case ErrorClass::Parse:     return "parse error: ";
    case ErrorClass::Substrate: return "substrate error: ";
    case ErrorClass::Timeout:   return "timeout: ";
    case ErrorClass::Cancelled: return "cancelled: ";
    case ErrorClass::RestartsExhausted: return "restarts exhausted: ";
    case ErrorClass::None:
    case ErrorClass::Generic:
    case ErrorClass::Foreign:
      break;
  }
  return "";
}
}  // namespace

std::string stripClassPrefix(ErrorClass errorClass,
                             const std::string& message) {
  return stripPrefix(message, classPrefix(errorClass));
}

void throwAsClass(ErrorClass errorClass, const std::string& message) {
  const std::string body = stripClassPrefix(errorClass, message);
  switch (errorClass) {
    case ErrorClass::Type:      throw TypeError(body);
    case ErrorClass::Index:     throw IndexError(body);
    case ErrorClass::Block:     throw BlockError(body);
    case ErrorClass::Purity:    throw PurityError(body);
    case ErrorClass::Codegen:   throw CodegenError(body);
    case ErrorClass::Parse:     throw ParseError(body);
    case ErrorClass::Substrate: throw SubstrateError(body);
    case ErrorClass::Timeout:   throw TimeoutError(body);
    case ErrorClass::Cancelled: throw CancelledError(body);
    case ErrorClass::RestartsExhausted: throw RestartsExhaustedError(body);
    case ErrorClass::None:
    case ErrorClass::Generic:
    case ErrorClass::Foreign:
      break;
  }
  throw Error(message);
}

}  // namespace psnap
