// Error types shared across the psnap libraries.
//
// The interpreter follows Snap!'s convention that user-visible failures
// (wrong input type, index out of range, unknown block) surface as catchable
// errors rather than crashing the environment, so every library throws a
// subclass of psnap::Error and the schedulers catch them per process.
//
// Two families matter to the parallel substrate's fault model:
//
//   * user-script errors (TypeError, IndexError, …) describe a bug in the
//     script being run — deterministic, so never retried;
//   * substrate errors (SubstrateError and its TimeoutError / CancelledError
//     descendants) describe the execution machinery failing underneath a
//     correct script — a stalled worker, a failed transfer, a saturated
//     pool. Pure tasks may be retried on these, and parallel operations may
//     degrade to their sequential path (the paper's collapsible "in
//     parallel" slot) when they persist.
//
// ErrorClass is the tagged-code form of this hierarchy for carrying an
// error's *class* (not just its message) across a worker boundary or into
// a log record where an std::exception_ptr is impractical.
#pragma once

#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>

namespace psnap {

/// Base class for all errors raised by the psnap libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A block was applied to a value of the wrong type (e.g. `item 1 of 7`).
class TypeError : public Error {
 public:
  explicit TypeError(const std::string& what) : Error("type error: " + what) {}
};

/// A list index was outside [1, length] (Snap! lists are 1-indexed).
class IndexError : public Error {
 public:
  explicit IndexError(const std::string& what)
      : Error("index error: " + what) {}
};

/// An opcode was not found in the block registry, or a block was built with
/// the wrong number of inputs for its spec.
class BlockError : public Error {
 public:
  explicit BlockError(const std::string& what)
      : Error("block error: " + what) {}
};

/// A ring that must be pure (worker-transportable) contained an impure or
/// unsupported block. Mirrors the paper's restriction that Web Worker code
/// cannot touch the stage.
class PurityError : public Error {
 public:
  explicit PurityError(const std::string& what)
      : Error("purity error: " + what) {}
};

/// Code generation could not translate a block to the target language
/// (no mapping registered, or a dynamic type could not be made static).
class CodegenError : public Error {
 public:
  explicit CodegenError(const std::string& what)
      : Error("codegen error: " + what) {}
};

/// Raised for malformed project XML.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what)
      : Error("parse error: " + what) {}
};

/// The execution substrate (worker pool, task transfer, shuffle machinery)
/// failed underneath a correct script. Pure tasks may be retried on this
/// class, and parallel operations may degrade to their sequential path.
class SubstrateError : public Error {
 public:
  explicit SubstrateError(const std::string& what)
      : Error("substrate error: " + what) {}

 protected:
  /// For descendants that want their own prefix instead of "substrate
  /// error:".
  struct Raw {};
  SubstrateError(Raw, const std::string& what) : Error(what) {}
};

/// A deadline or frame budget elapsed before the operation finished.
class TimeoutError : public SubstrateError {
 public:
  explicit TimeoutError(const std::string& what)
      : SubstrateError(Raw{}, "timeout: " + what) {}
};

/// The operation was cancelled — by a sibling task's failure (fail-fast
/// groups), an explicit stop, or a parent token.
class CancelledError : public SubstrateError {
 public:
  explicit CancelledError(const std::string& what)
      : SubstrateError(Raw{}, "cancelled: " + what) {}
};

/// A supervised session spent its restart budget: every re-admission from
/// its newest checkpoint failed again within the policy's window. Substrate
/// family (the failures were machinery failures), but terminal — the
/// supervisor will not retry past this point.
class RestartsExhaustedError : public SubstrateError {
 public:
  explicit RestartsExhaustedError(const std::string& what)
      : SubstrateError(Raw{}, "restarts exhausted: " + what) {}
};

/// The tagged-code form of the error hierarchy, for boundaries where an
/// exception object cannot travel (log records, polling APIs).
enum class ErrorClass : uint8_t {
  None = 0,   ///< no error
  Generic,    ///< psnap::Error with no more specific class
  Type,
  Index,
  Block,
  Purity,
  Codegen,
  Parse,
  Substrate,  ///< SubstrateError proper — the only retryable class
  Timeout,
  Cancelled,
  RestartsExhausted,  ///< a supervised session spent its restart budget
  Foreign,    ///< not a psnap::Error (std::exception or unknown)
};

/// Classify a captured exception. Null maps to ErrorClass::None.
ErrorClass classifyError(const std::exception_ptr& error);

/// Human-readable class name ("TypeError", "SubstrateError", …).
const char* errorClassName(ErrorClass errorClass);

/// True for the substrate family (Substrate, Timeout, Cancelled): the
/// failure came from the machinery, not the user's script.
bool isSubstrateClass(ErrorClass errorClass);

/// True only for SubstrateError proper. Timeouts are not retried (the
/// deadline has already passed) and cancellations are deliberate.
bool isRetryableClass(ErrorClass errorClass);

/// `message` with the prefix the class's constructor would re-add ("type
/// error: ", "timeout: ", …) removed, for call sites that rebuild a typed
/// error with extra context spliced in front.
std::string stripClassPrefix(ErrorClass errorClass,
                             const std::string& message);

/// Reconstruct a typed error from its tagged form and throw it. The
/// message is used verbatim (it already carries the class prefix from the
/// original throw site).
[[noreturn]] void throwAsClass(ErrorClass errorClass,
                               const std::string& message);

}  // namespace psnap
