// Error types shared across the psnap libraries.
//
// The interpreter follows Snap!'s convention that user-visible failures
// (wrong input type, index out of range, unknown block) surface as catchable
// errors rather than crashing the environment, so every library throws a
// subclass of psnap::Error and the schedulers catch them per process.
#pragma once

#include <stdexcept>
#include <string>

namespace psnap {

/// Base class for all errors raised by the psnap libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A block was applied to a value of the wrong type (e.g. `item 1 of 7`).
class TypeError : public Error {
 public:
  explicit TypeError(const std::string& what) : Error("type error: " + what) {}
};

/// A list index was outside [1, length] (Snap! lists are 1-indexed).
class IndexError : public Error {
 public:
  explicit IndexError(const std::string& what)
      : Error("index error: " + what) {}
};

/// An opcode was not found in the block registry, or a block was built with
/// the wrong number of inputs for its spec.
class BlockError : public Error {
 public:
  explicit BlockError(const std::string& what)
      : Error("block error: " + what) {}
};

/// A ring that must be pure (worker-transportable) contained an impure or
/// unsupported block. Mirrors the paper's restriction that Web Worker code
/// cannot touch the stage.
class PurityError : public Error {
 public:
  explicit PurityError(const std::string& what)
      : Error("purity error: " + what) {}
};

/// Code generation could not translate a block to the target language
/// (no mapping registered, or a dynamic type could not be made static).
class CodegenError : public Error {
 public:
  explicit CodegenError(const std::string& what)
      : Error("codegen error: " + what) {}
};

/// Raised for malformed project XML.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what)
      : Error("parse error: " + what) {}
};

}  // namespace psnap
