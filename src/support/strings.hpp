// Small string helpers used by the block specs, the code generator, and the
// workload generators. Kept dependency-free.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace psnap::strings {

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Split on any run of whitespace, dropping empty fields (word tokenizer).
std::vector<std::string> splitWhitespace(std::string_view text);

/// Join `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Trim ASCII whitespace from both ends.
std::string trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool startsWith(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool endsWith(std::string_view text, std::string_view suffix);

/// Replace every occurrence of `from` in `text` with `to`.
std::string replaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// Lower-case ASCII copy.
std::string toLower(std::string_view text);

/// True if `text` is empty or all ASCII whitespace (no allocation).
bool isBlank(std::string_view text);

/// Case-insensitive (ASCII) equality without building lowered copies.
bool equalsIgnoreCase(std::string_view a, std::string_view b);

/// Three-way case-insensitive (ASCII) comparison. Orders exactly like
/// `toLower(a) <=> toLower(b)` over unsigned bytes, without allocating.
int compareIgnoreCase(std::string_view a, std::string_view b);

/// FNV-1a hash over the lowered (ASCII) bytes of `text`. Equal up to case
/// means equal hash; used for case-insensitive sharding.
uint64_t hashLowered(std::string_view text);

/// Indent every line of `text` by `spaces` spaces (used by codegen when
/// substituting a script into a C-slot placeholder).
std::string indent(std::string_view text, int spaces);

/// Format a double the way Snap! displays it: integers without a decimal
/// point, otherwise shortest round-trip representation.
std::string formatNumber(double value);

/// Parse a double; returns false when `text` is not numeric.
bool parseNumber(std::string_view text, double& out);

}  // namespace psnap::strings
