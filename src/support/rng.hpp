// Deterministic random number generation for workload generators.
//
// Every generator in this repo takes an explicit seed so that workloads,
// tests, and benchmark rows are bit-reproducible across runs and machines
// (a requirement for regenerating the paper's figures deterministically).
// We use our own splitmix64/xoshiro256** rather than std::mt19937 because
// the standard distributions are not guaranteed to produce identical
// sequences across standard library implementations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace psnap {

/// xoshiro256** seeded via splitmix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t next();

  /// Uniform integer in [0, bound) via rejection sampling (no modulo bias).
  uint64_t below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t between(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Approximately normal (Irwin–Hall sum of 12 uniforms), deterministic.
  double normal(double mean, double stddev);

  /// Pick an index in [0, weights.size()) proportional to weights.
  size_t weighted(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
};

}  // namespace psnap
