// Cooperative cancellation with deadlines.
//
// The paper's parallel blocks run inside a poll-and-yield loop (Listing 2)
// over a worker substrate, so cancellation here is cooperative by design:
// nothing preempts a task; instead tasks and interpreter processes check a
// shared CancelToken at their natural polling points (per chunk claim, per
// yield marker) and unwind with a typed CancelledError / TimeoutError.
//
// Tokens form a single-level chain: a Parallel operation's own token can
// be parented to its caller's (e.g. the script's), so stopping a script
// cancels its in-flight parallel jobs on their next checkpoint. Fail-fast
// TaskGroups use the same mechanism: the first failing task cancels the
// group token and unstarted siblings are skipped instead of drained.
//
// Thread-safety: cancel() may race with cancelled()/checkpoint() from any
// thread. The reason message is written before the state flag is published
// (release) and read only after observing the flag (acquire).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "support/error.hpp"

namespace psnap {

class CancelToken;
using CancelTokenPtr = std::shared_ptr<CancelToken>;

class CancelToken {
 public:
  /// A plain token: cancelled only by an explicit cancel() (or a parent).
  static CancelTokenPtr create(CancelTokenPtr parent = nullptr) {
    return std::make_shared<CancelToken>(Clock::time_point::max(),
                                         std::move(parent));
  }

  /// A token that additionally trips `seconds` from now (steady clock).
  /// `seconds <= 0` means "already expired" — useful for deterministic
  /// timeout tests.
  static CancelTokenPtr withDeadline(double seconds,
                                     CancelTokenPtr parent = nullptr) {
    return std::make_shared<CancelToken>(
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds)),
        std::move(parent));
  }

  using Clock = std::chrono::steady_clock;

  CancelToken(Clock::time_point deadline, CancelTokenPtr parent)
      : deadline_(deadline),
        hasDeadline_(deadline != Clock::time_point::max()),
        parent_(std::move(parent)) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request cancellation. The first call wins; later calls (and a later
  /// deadline trip) do not overwrite the reason.
  void cancel(const std::string& reason = "operation cancelled") {
    trip(ErrorClass::Cancelled, reason);
  }

  /// Trip the token with the Timeout class — a watchdog's verdict that
  /// the work exceeded a budget the token itself cannot measure (e.g. the
  /// serving layer's per-tenant frame budget). First trip wins, exactly
  /// like cancel(); checkpoints then raise TimeoutError with `reason`.
  void timeoutNow(const std::string& reason = "budget exceeded") {
    trip(ErrorClass::Timeout, reason);
  }

  /// Cancelled, timed out, or parented to a token that is? One relaxed
  /// atomic load on the fast path; the deadline is consulted only when one
  /// was set.
  bool cancelled() const {
    if (state_.load(std::memory_order_acquire) != uint8_t(ErrorClass::None)) {
      return true;
    }
    if (hasDeadline_ && Clock::now() >= deadline_) {
      // Latch the timeout so the reason is stable from here on.
      const_cast<CancelToken*>(this)->trip(ErrorClass::Timeout,
                                           "deadline exceeded");
      return true;
    }
    return parent_ && parent_->cancelled();
  }

  /// Why the token tripped: Cancelled, Timeout, or None when still live.
  /// A parent's reason wins only if this token itself is untripped.
  ErrorClass reason() const {
    const auto own = ErrorClass(state_.load(std::memory_order_acquire));
    if (own != ErrorClass::None) return own;
    if (hasDeadline_ && Clock::now() >= deadline_) return ErrorClass::Timeout;
    return parent_ ? parent_->reason() : ErrorClass::None;
  }

  /// The reason message (meaningful once cancelled()).
  std::string reasonMessage() const {
    if (state_.load(std::memory_order_acquire) != uint8_t(ErrorClass::None)) {
      std::lock_guard<std::mutex> lock(mutex_);
      return message_;
    }
    if (hasDeadline_ && Clock::now() >= deadline_) return "deadline exceeded";
    return parent_ ? parent_->reasonMessage() : std::string();
  }

  /// Throw the typed error for the trip reason, or return if still live.
  /// This is the cancellation point tasks and processes call.
  void checkpoint() const {
    if (!cancelled()) return;
    switch (reason()) {
      case ErrorClass::Timeout:
        throw TimeoutError(reasonMessage());
      default:
        throw CancelledError(reasonMessage());
    }
  }

  bool hasDeadline() const { return hasDeadline_; }

  /// Seconds until the nearest deadline on this token's parent chain
  /// (negative once past; +inf when no token in the chain has one). A
  /// sleeping scheduler bounds its wait with this so a parked process's
  /// deadline — even one inherited from a parent — fires on time.
  double remainingSeconds() const {
    double remaining = std::numeric_limits<double>::infinity();
    if (hasDeadline_) {
      remaining =
          std::chrono::duration<double>(deadline_ - Clock::now()).count();
    }
    if (parent_) {
      remaining = std::min(remaining, parent_->remainingSeconds());
    }
    return remaining;
  }

 private:
  void trip(ErrorClass why, const std::string& reason) {
    uint8_t expected = uint8_t(ErrorClass::None);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // compare_exchange under the lock so the winning reason and its
      // message publish together.
      if (!state_.compare_exchange_strong(expected, uint8_t(why),
                                          std::memory_order_acq_rel)) {
        return;
      }
      message_ = reason;
    }
  }

  std::atomic<uint8_t> state_{uint8_t(ErrorClass::None)};
  const Clock::time_point deadline_;
  const bool hasDeadline_;
  const CancelTokenPtr parent_;
  mutable std::mutex mutex_;
  std::string message_;  // guarded by mutex_, published by state_
};

}  // namespace psnap
