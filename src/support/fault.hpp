// Deterministic fault injection for the parallel substrate.
//
// Chaos testing needs the substrate's failure paths to fire on demand, in
// a reproducible order, without perturbing production performance. This
// module provides named injection points compiled into the substrate
// permanently but costing a single relaxed atomic load when disarmed:
//
//   fault::inject(fault::Point::TaskThrow);   // hot path: one branch
//
// When armed (fault::arm with a seed, a point mask, and a rate), each
// evaluation of an armed point draws from a splitmix64 stream keyed by
// (seed, point, per-point sequence number) and fires when the draw lands
// under rate. The sequence number is a per-point atomic counter, so for a
// given seed the set of firing sequence numbers is identical across runs
// even though thread interleaving may assign them to different threads —
// exactly the reproducibility the seeded chaos suite needs.
//
// Firing behaviour by point:
//   * TaskThrow / TransferFailure / PoolSaturation / SessionAdmitFailure /
//     TenantStall / NativeCompileFailure / SnapshotWriteFailure /
//     MmapFailure throw SubstrateError (the retryable class — retry,
//     degradation, admission-rejection, and crash-containment paths
//     exercise; a NativeCompileFailure inside the tier's compile task
//     downgrades that kernel permanently; a SnapshotWriteFailure leaves
//     no partial file behind — the writer stages into a temp path and
//     renames only on commit);
//   * the supervision points also throw SubstrateError:
//     CheckpointWriteFailure fires inside the pooled checkpoint-write
//     task (the session keeps running and its previous checkpoint stays
//     valid), RestartStorm fires as a restart attempt is re-admitted
//     (the attempt counts against the session's restart budget), and
//     RecoveryCorruption fires when a checkpoint is read back (the
//     loader falls back to the previous generation);
//   * WorkerStall sleeps the calling worker for `stallMicros` instead of
//     throwing, modelling a Web Worker that has gone unresponsive (pairs
//     with deadlines to produce TimeoutError);
//   * CompletionDrop sleeps the settling worker between marking an
//     operation complete and dispatching its callbacks, widening the
//     completion-vs-cancel-vs-deadline race window. It must never throw:
//     a throw at the dispatch site would lose the wakeup forever, which
//     is a bug in the injector, not a fault the model covers.
//
// The serve points carry a *tag* (the session id) so Config::targetTag
// can aim a fault at exactly one tenant — the multi-tenant chaos suite's
// isolation scenarios depend on every other tenant staying fault-free.
//
// Injection points live only on the parallel substrate's own code paths
// (pool loop, clone-in/out, chunk bodies, shuffle). The sequential
// fallback paths have no substrate and therefore no injection points —
// which is what lets every chaos scenario converge to a correct result.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace psnap::fault {

enum class Point : uint8_t {
  TaskThrow,           ///< a task body dies on a worker
  WorkerStall,         ///< a pool worker goes unresponsive for a while
  TransferFailure,     ///< structured-clone transfer across the boundary fails
  PoolSaturation,      ///< the pool cannot accept new work
  SessionAdmitFailure, ///< the serving layer cannot admit a new session
  TenantStall,         ///< one tenant's frame slice dies mid-flight
  CompletionDrop,      ///< a completion callback is delayed before dispatch
  NativeCompileFailure,///< the native tier's out-of-process compile dies
  SnapshotWriteFailure,///< a persistence snapshot write dies mid-file
  MmapFailure,         ///< mapping a snapshot file into memory fails
  CheckpointWriteFailure, ///< a supervised session's checkpoint write dies
  RestartStorm,        ///< a restart attempt itself fails before first frame
  RecoveryCorruption,  ///< the newest checkpoint reads back corrupt
};
inline constexpr size_t kPointCount = 13;

const char* pointName(Point point);

struct Config {
  uint64_t seed = 1;
  /// Fire when splitmix64(seed, point, n) % rateDenominator < rateNumerator.
  uint32_t rateNumerator = 1;
  uint32_t rateDenominator = 4;
  /// Bitmask of armed points: bit (1 << unsigned(Point::X)).
  uint32_t pointMask = 0;
  /// WorkerStall sleep length.
  uint32_t stallMicros = 500;
  /// Target a single tagged entity (the serving layer tags its injection
  /// points with the session id). 0 arms every evaluation; non-zero arms
  /// only evaluations whose tag matches — untagged sites never fire, so
  /// a chaos test can aim a fault at exactly one tenant.
  uint64_t targetTag = 0;
};

/// Bit for one point, for Config::pointMask.
inline constexpr uint32_t maskOf(Point point) {
  return uint32_t{1} << unsigned(point);
}

/// Arm injection (resets all per-point counters). Safe to call while
/// inject() evaluations are in flight — the live config is stored as
/// per-field relaxed atomics, so a racing reader sees a benign mix of
/// old and new fields (at most one hybrid draw), never a torn value.
/// The pool's worker loops evaluate their stall point whenever awake,
/// so true quiescence cannot be assumed. For fully deterministic firing
/// counts, still arm from the controlling test thread before launching
/// the operation under test.
void arm(const Config& config);
void disarm();
bool armed();

/// Times an armed point actually fired since the last arm().
uint64_t firedCount(Point point);
/// Times the point was evaluated (armed or not hit) since the last arm().
uint64_t evaluatedCount(Point point);

namespace detail {
extern std::atomic<bool> gArmed;
/// Out-of-line slow path: draw, count, and fire (throw or stall).
void evaluate(Point point, uint64_t tag);
}  // namespace detail

/// The injection point. Zero-cost when disarmed: a relaxed load + branch.
/// `tag` identifies the entity being exercised (session id at the serve
/// points; 0 = untagged) for Config::targetTag aiming.
inline void inject(Point point, uint64_t tag = 0) {
  if (!detail::gArmed.load(std::memory_order_relaxed)) return;
  detail::evaluate(point, tag);
}

/// RAII arming for tests: arms in the constructor, disarms in the
/// destructor (exception-safe against failing assertions).
class ScopedFault {
 public:
  explicit ScopedFault(const Config& config) { arm(config); }
  ~ScopedFault() { disarm(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace psnap::fault
