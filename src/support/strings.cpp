#include "support/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace psnap::strings {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> splitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string replaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out += text.substr(start);
      return out;
    }
    out += text.substr(start, pos - start);
    out += to;
    start = pos + from.size();
  }
}

std::string toLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string indent(std::string_view text, int spaces) {
  const std::string pad(static_cast<size_t>(spaces), ' ');
  std::string out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find('\n', start);
    std::string_view line = text.substr(
        start, pos == std::string_view::npos ? text.size() - start
                                             : pos - start);
    if (!line.empty()) out += pad;
    out += line;
    if (pos == std::string_view::npos) break;
    out += '\n';
    start = pos + 1;
  }
  return out;
}

std::string formatNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "Infinity" : "-Infinity";
  double rounded = std::round(value);
  if (rounded == value && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  // Shortest representation that round-trips.
  for (int precision = 1; precision <= 17; ++precision) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    double parsed = 0;
    if (parseNumber(buf, parsed) && parsed == value) return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

bool parseNumber(std::string_view text, double& out) {
  std::string trimmed = trim(text);
  if (trimmed.empty()) return false;
  const char* begin = trimmed.c_str();
  char* end = nullptr;
  double value = std::strtod(begin, &end);
  if (end != begin + trimmed.size()) return false;
  out = value;
  return true;
}

}  // namespace psnap::strings
