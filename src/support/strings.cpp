#include "support/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace psnap::strings {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> splitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string replaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out += text.substr(start);
      return out;
    }
    out += text.substr(start, pos - start);
    out += to;
    start = pos + from.size();
  }
}

std::string toLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool isBlank(std::string_view text) {
  for (char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool equalsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

int compareIgnoreCase(std::string_view a, std::string_view b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const int ca = std::tolower(static_cast<unsigned char>(a[i]));
    const int cb = std::tolower(static_cast<unsigned char>(b[i]));
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

uint64_t hashLowered(std::string_view text) {
  // FNV-1a over lowered bytes.
  uint64_t hash = 1469598103934665603ull;
  for (char c : text) {
    hash ^= static_cast<uint64_t>(
        std::tolower(static_cast<unsigned char>(c)));
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string indent(std::string_view text, int spaces) {
  const std::string pad(static_cast<size_t>(spaces), ' ');
  std::string out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find('\n', start);
    std::string_view line = text.substr(
        start, pos == std::string_view::npos ? text.size() - start
                                             : pos - start);
    if (!line.empty()) out += pad;
    out += line;
    if (pos == std::string_view::npos) break;
    out += '\n';
    start = pos + 1;
  }
  return out;
}

std::string formatNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "Infinity" : "-Infinity";
  double rounded = std::round(value);
  if (rounded == value && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  // Shortest representation that round-trips.
  for (int precision = 1; precision <= 17; ++precision) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    double parsed = 0;
    if (parseNumber(buf, parsed) && parsed == value) return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

bool parseNumber(std::string_view text, double& out) {
  // Trim as a view; real numbers fit the stack buffer, so the hot path
  // never touches the heap (strtod needs NUL termination, so the bytes
  // are copied somewhere either way).
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  const std::string_view trimmed = text.substr(begin, end - begin);
  if (trimmed.empty()) return false;
  char stack[64];
  std::string heap;
  const char* cstr;
  if (trimmed.size() < sizeof(stack)) {
    std::memcpy(stack, trimmed.data(), trimmed.size());
    stack[trimmed.size()] = '\0';
    cstr = stack;
  } else {
    heap.assign(trimmed);
    cstr = heap.c_str();
  }
  char* parseEnd = nullptr;
  double value = std::strtod(cstr, &parseEnd);
  if (parseEnd != cstr + trimmed.size()) return false;
  out = value;
  return true;
}

}  // namespace psnap::strings
