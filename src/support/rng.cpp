#include "support/rng.hpp"

#include "support/error.hpp"

namespace psnap {

namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

uint64_t Rng::next() {
  const uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

uint64_t Rng::below(uint64_t bound) {
  if (bound == 0) throw Error("Rng::below: bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::between(int64_t lo, int64_t hi) {
  if (lo > hi) throw Error("Rng::between: lo > hi");
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(below(span));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Rng::normal(double mean, double stddev) {
  double sum = 0;
  for (int i = 0; i < 12; ++i) sum += uniform();
  return mean + stddev * (sum - 6.0);
}

size_t Rng::weighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) throw Error("Rng::weighted: total weight must be positive");
  double pick = uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick < 0) return i;
  }
  return weights.size() - 1;
}

}  // namespace psnap
