#include "data/csv.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace psnap::data {

using blocks::List;
using blocks::ListPtr;
using blocks::Value;

std::vector<CsvRow> parseCsv(const std::string& text) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool quoted = false;
  bool sawAnything = false;

  auto endField = [&] {
    row.push_back(field);
    field.clear();
  };
  auto endRow = [&] {
    endField();
    rows.push_back(row);
    row.clear();
    sawAnything = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char ch = text[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += ch;
      }
      sawAnything = true;
      continue;
    }
    switch (ch) {
      case '"':
        quoted = true;
        sawAnything = true;
        break;
      case ',':
        endField();
        sawAnything = true;
        break;
      case '\r':
        break;
      case '\n':
        endRow();
        break;
      default:
        field += ch;
        sawAnything = true;
    }
  }
  if (quoted) throw ParseError("unterminated quote in CSV");
  if (sawAnything || !field.empty() || !row.empty()) endRow();
  return rows;
}

std::string writeCsv(const std::vector<CsvRow>& rows) {
  std::string out;
  for (const CsvRow& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out += ',';
      const std::string& field = row[i];
      const bool needsQuote =
          field.find_first_of(",\"\n") != std::string::npos;
      if (needsQuote) {
        out += '"' + strings::replaceAll(field, "\"", "\"\"") + '"';
      } else {
        out += field;
      }
    }
    out += '\n';
  }
  return out;
}

ListPtr csvToList(const std::vector<CsvRow>& rows) {
  auto out = List::make();
  for (const CsvRow& row : rows) {
    auto rowList = List::make();
    for (const std::string& field : row) {
      double number = 0;
      if (strings::parseNumber(field, number)) {
        rowList->add(Value(number));
      } else {
        rowList->add(Value(field));
      }
    }
    out->add(Value(rowList));
  }
  return out;
}

std::vector<CsvRow> listToCsv(const ListPtr& list) {
  std::vector<CsvRow> rows;
  for (const Value& rowValue : list->items()) {
    CsvRow row;
    for (const Value& field : rowValue.asList()->items()) {
      row.push_back(field.asText());
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace psnap::data
