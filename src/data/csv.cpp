#include "data/csv.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace psnap::data {

using blocks::List;
using blocks::ListPtr;
using blocks::Value;

std::vector<CsvRow> parseCsv(std::string_view text) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool quoted = false;
  bool sawAnything = false;

  auto endField = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  auto endRow = [&] {
    endField();
    rows.push_back(std::move(row));
    row.clear();
    sawAnything = false;
  };

  // Scan by runs, not characters: between delimiters, whole spans are
  // appended in one call.
  size_t i = 0;
  while (i < text.size()) {
    if (quoted) {
      const size_t next = text.find('"', i);
      if (next == std::string_view::npos) break;  // unterminated
      field.append(text, i, next - i);
      sawAnything = true;
      if (next + 1 < text.size() && text[next + 1] == '"') {
        field += '"';
        i = next + 2;
      } else {
        quoted = false;
        i = next + 1;
      }
      continue;
    }
    const size_t next = text.find_first_of("\",\r\n", i);
    if (next == std::string_view::npos) {
      field.append(text, i, text.size() - i);
      sawAnything = true;
      i = text.size();
      break;
    }
    if (next > i) {
      field.append(text, i, next - i);
      sawAnything = true;
    }
    switch (text[next]) {
      case '"':
        quoted = true;
        sawAnything = true;
        break;
      case ',':
        endField();
        sawAnything = true;
        break;
      case '\r':
        break;
      case '\n':
        endRow();
        break;
    }
    i = next + 1;
  }
  if (quoted) throw ParseError("unterminated quote in CSV");
  if (sawAnything || !field.empty() || !row.empty()) endRow();
  return rows;
}

std::string writeCsv(const std::vector<CsvRow>& rows) {
  // Reserve the exact unquoted size up front; quoting only ever adds.
  size_t bytes = 0;
  for (const CsvRow& row : rows) {
    bytes += row.size() + 1;  // separators + newline
    for (const std::string& field : row) bytes += field.size();
  }
  std::string out;
  out.reserve(bytes);
  for (const CsvRow& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out += ',';
      const std::string& field = row[i];
      const bool needsQuote =
          field.find_first_of(",\"\n") != std::string::npos;
      if (needsQuote) {
        out += '"';
        out += strings::replaceAll(field, "\"", "\"\"");
        out += '"';
      } else {
        out += field;
      }
    }
    out += '\n';
  }
  return out;
}

ListPtr csvToList(const std::vector<CsvRow>& rows) {
  auto out = List::make();
  out->reserve(rows.size());
  for (const CsvRow& row : rows) {
    auto rowList = List::make();
    rowList->reserve(row.size());
    for (const std::string& field : row) {
      double number = 0;
      if (strings::parseNumber(field, number)) {
        rowList->add(Value(number));
      } else {
        rowList->add(Value(field));
      }
    }
    out->add(Value(rowList));
  }
  return out;
}

std::vector<CsvRow> listToCsv(const ListPtr& list) {
  std::vector<CsvRow> rows;
  rows.reserve(list->length());
  for (const Value& rowValue : list->items()) {
    CsvRow row;
    row.reserve(rowValue.asList()->length());
    for (const Value& field : rowValue.asList()->items()) {
      row.push_back(field.asText());
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace psnap::data
