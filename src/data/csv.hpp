// Minimal CSV reading/writing — the "consume existing data files" and
// "write data to files for use by other programs" future-work items of
// paper Sec. 6.3, so the environment can ingest real station files when
// they are available.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "blocks/value.hpp"

namespace psnap::data {

using CsvRow = std::vector<std::string>;

/// Parse CSV text: commas separate fields, double quotes protect commas
/// and embedded quotes ("" escapes a quote). Rows split on '\n'; a
/// trailing newline does not produce an empty row. Plain runs are copied
/// in bulk (no per-character appends).
std::vector<CsvRow> parseCsv(std::string_view text);

/// Serialize rows, quoting any field containing a comma, quote, or
/// newline.
std::string writeCsv(const std::vector<CsvRow>& rows);

/// Convert parsed rows into a block list-of-lists (numeric-looking fields
/// become numbers) — the shape Snap! users manipulate.
blocks::ListPtr csvToList(const std::vector<CsvRow>& rows);

/// Convert a block list-of-lists back to CSV rows.
std::vector<CsvRow> listToCsv(const blocks::ListPtr& list);

}  // namespace psnap::data
