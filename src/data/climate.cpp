#include "data/climate.hpp"

#include <algorithm>
#include <cmath>

#include "persist/snapshot.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace psnap::data {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// The one generation loop, shared by the materializing and streaming
/// paths so both draw the identical rng sequence (and therefore produce
/// bit-identical readings). `visit(station, year, month, fahrenheit)` is
/// called once per record in deterministic order.
template <typename Visit>
void forEachTemperature(const ClimateConfig& config, Visit&& visit) {
  if (config.lastYear < config.firstYear) {
    throw Error("generateClimate: lastYear before firstYear");
  }
  Rng rng(config.seed);
  for (size_t s = 0; s < config.stations; ++s) {
    // Station baseline: 35–70 °F annual mean, 10–30 °F seasonal swing.
    const double baseline = rng.uniform(35.0, 70.0);
    const double swing = rng.uniform(10.0, 30.0);
    char id[16];
    std::snprintf(id, sizeof(id), "USW%05zu", s + 1);
    for (int year = config.firstYear; year <= config.lastYear; ++year) {
      const double drift = config.warmingPerDecadeF *
                           (year - config.firstYear) / 10.0;
      for (int month = 1; month <= 12; ++month) {
        const double seasonal =
            swing * std::sin(2.0 * kPi * (month - 4) / 12.0);
        visit(id, year, month,
              baseline + seasonal + drift +
                  rng.normal(0.0, config.noiseStddevF));
      }
    }
  }
}

}  // namespace

uint64_t climateRecordCount(const ClimateConfig& config) {
  if (config.lastYear < config.firstYear) return 0;
  return uint64_t(config.stations) *
         uint64_t(config.lastYear - config.firstYear + 1) * 12;
}

std::vector<TemperatureRecord> generateClimate(const ClimateConfig& config) {
  std::vector<TemperatureRecord> out;
  out.reserve(climateRecordCount(config));
  forEachTemperature(config, [&](const char* id, int year, int month,
                                 double fahrenheit) {
    TemperatureRecord record;
    record.station = id;
    record.year = year;
    record.month = month;
    record.fahrenheit = fahrenheit;
    out.push_back(std::move(record));
  });
  return out;
}

uint64_t writeFahrenheitSnapshot(const std::string& path,
                                 const ClimateConfig& config) {
  persist::DatasetWriter writer(path);
  forEachTemperature(config, [&](const char*, int, int, double fahrenheit) {
    writer.appendNumber(fahrenheit);
  });
  writer.commit();
  return writer.count();
}

double fahrenheitToCelsius(double f) { return (5.0 * (f - 32.0)) / 9.0; }

double referenceMeanCelsius(const std::vector<TemperatureRecord>& records) {
  if (records.empty()) throw Error("referenceMeanCelsius: no records");
  double sum = 0;
  for (const TemperatureRecord& record : records) {
    sum += fahrenheitToCelsius(record.fahrenheit);
  }
  return sum / static_cast<double>(records.size());
}

std::vector<std::pair<int, double>> referenceYearlyMeanCelsius(
    const std::vector<TemperatureRecord>& records) {
  std::vector<std::pair<int, double>> out;
  std::vector<std::pair<int, std::pair<double, size_t>>> sums;
  for (const TemperatureRecord& record : records) {
    bool found = false;
    for (auto& [year, acc] : sums) {
      if (year == record.year) {
        acc.first += fahrenheitToCelsius(record.fahrenheit);
        acc.second += 1;
        found = true;
        break;
      }
    }
    if (!found) {
      sums.push_back(
          {record.year, {fahrenheitToCelsius(record.fahrenheit), 1}});
    }
  }
  out.reserve(sums.size());
  for (const auto& [year, acc] : sums) {
    out.push_back({year, acc.first / static_cast<double>(acc.second)});
  }
  std::sort(out.begin(), out.end());
  return out;
}

blocks::ListPtr toFahrenheitList(
    const std::vector<TemperatureRecord>& records) {
  auto list = blocks::List::make();
  list->reserve(records.size());
  for (const TemperatureRecord& record : records) {
    list->add(blocks::Value(record.fahrenheit));
  }
  return list;
}

std::string toKvpText(const std::vector<TemperatureRecord>& records,
                      const std::string& keyOverride) {
  std::string out;
  // "USW00001 -12.345678901234\n" ≈ 26 bytes; reserve once and append
  // pieces in place instead of building a temporary line per record.
  out.reserve(records.size() * 28);
  for (const TemperatureRecord& record : records) {
    out.append(keyOverride.empty() ? record.station : keyOverride);
    out.push_back(' ');
    out.append(strings::formatNumber(record.fahrenheit));
    out.push_back('\n');
  }
  return out;
}

}  // namespace psnap::data
