// Word-corpus workload generator for the word-count MapReduce experiment
// (paper Fig. 11–12).
//
// Texts are generated from a fixed vocabulary under a Zipf-like rank
// distribution (natural-language shaped: few very frequent words, a long
// tail), seeded and fully deterministic. A plain-C++ reference counter is
// provided as the ground truth the MapReduce result must match.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace psnap::data {

/// The canonical demo sentence used in the paper-style examples.
std::string sampleSentence();

/// Generate `wordCount` space-separated words, Zipf-distributed over a
/// `vocabulary`-word dictionary. Deterministic per seed.
std::string generateText(size_t wordCount, size_t vocabulary, uint64_t seed);

/// Stream the same word sequence straight into a dataset snapshot at
/// `path` — one text value per word, O(1) memory, identical to
/// tokenize(generateText(wordCount, vocabulary, seed)). The ingest path
/// for word-count corpora too large to materialize. Returns wordCount.
uint64_t writeWordsSnapshot(const std::string& path, size_t wordCount,
                            size_t vocabulary, uint64_t seed);

/// Split into lowercase words (whitespace tokenizer, punctuation kept —
/// matching the split block's behaviour).
std::vector<std::string> tokenize(const std::string& text);

/// Ground-truth word count, sorted by word (the expected Fig. 12 output).
std::map<std::string, size_t> referenceWordCount(const std::string& text);

}  // namespace psnap::data
