// Synthetic NOAA-like weather-station data (paper Sec. 3.4's global
// climate modeling example).
//
// The paper uses NOAA weather-station files with temperatures in
// Fahrenheit; those files are not redistributable here, so this generator
// produces the closest synthetic equivalent that exercises the same code
// path: per-station monthly mean temperatures in °F, built from a
// station-specific baseline, a seasonal sinusoid, year-over-year warming
// drift, and seeded noise. Ground-truth averages are computed in plain
// C++ so the MapReduce pipeline (and the generated OpenMP program) can be
// verified against them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blocks/value.hpp"

namespace psnap::data {

struct TemperatureRecord {
  std::string station;  ///< NOAA-style id, e.g. "USW00003"
  int year = 0;
  int month = 1;        ///< 1–12
  double fahrenheit = 0;
};

struct ClimateConfig {
  size_t stations = 4;
  int firstYear = 1950;
  int lastYear = 2015;
  double warmingPerDecadeF = 0.3;  ///< linear drift
  double noiseStddevF = 2.0;
  uint64_t seed = 42;
};

/// Generate monthly records for every station/year/month, deterministic
/// per seed.
std::vector<TemperatureRecord> generateClimate(const ClimateConfig& config);

/// Number of records the config produces (stations × years × 12).
uint64_t climateRecordCount(const ClimateConfig& config);

/// Stream the configured grid's Fahrenheit readings straight into a
/// dataset snapshot at `path`, one number per record, in O(1) memory —
/// the ingest path for datasets too large to materialize. The values are
/// byte-identical to toFahrenheitList(generateClimate(config)), so a
/// query over the mmap-loaded snapshot must equal the same query over
/// the generated list. Returns the record count.
uint64_t writeFahrenheitSnapshot(const std::string& path,
                                 const ClimateConfig& config);

/// Fahrenheit→Celsius (the map function of paper Fig. 19).
double fahrenheitToCelsius(double f);

/// Ground-truth mean Celsius over all records.
double referenceMeanCelsius(const std::vector<TemperatureRecord>& records);

/// Ground-truth mean Celsius per year (for the warming-trend exercise:
/// "observe a mean change in the temperature of the Earth over time").
std::vector<std::pair<int, double>> referenceYearlyMeanCelsius(
    const std::vector<TemperatureRecord>& records);

/// The Fahrenheit readings as a block list (input to the mapReduce block).
blocks::ListPtr toFahrenheitList(
    const std::vector<TemperatureRecord>& records);

/// "key value" lines for the generated OpenMP MapReduce program's stdin
/// (key = station, value = °F); matches the driver's input() format.
std::string toKvpText(const std::vector<TemperatureRecord>& records,
                      const std::string& keyOverride = "");

}  // namespace psnap::data
