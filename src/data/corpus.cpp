#include "data/corpus.hpp"

#include "persist/snapshot.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace psnap::data {

namespace {

/// A compact base vocabulary; indices past its size synthesize words.
const char* const kBaseWords[] = {
    "the",      "of",       "and",      "to",       "in",      "is",
    "parallel", "computing", "snap",    "block",    "map",     "reduce",
    "worker",   "sprite",   "clone",    "script",   "data",    "code",
    "thread",   "program",  "student",  "teacher",  "cloud",   "core",
    "speed",    "time",     "list",     "value",    "stage",   "run",
};
constexpr size_t kBaseCount = sizeof(kBaseWords) / sizeof(kBaseWords[0]);

std::string wordAt(size_t index) {
  if (index < kBaseCount) return kBaseWords[index];
  return "w" + std::to_string(index);
}

}  // namespace

std::string sampleSentence() {
  return "the quick brown fox jumps over the lazy dog and the quick cat";
}

std::string generateText(size_t wordCount, size_t vocabulary,
                         uint64_t seed) {
  if (vocabulary == 0) throw Error("generateText: empty vocabulary");
  Rng rng(seed);
  // Zipf rank weights 1/r.
  std::vector<double> weights(vocabulary);
  for (size_t r = 0; r < vocabulary; ++r) {
    weights[r] = 1.0 / static_cast<double>(r + 1);
  }
  std::vector<std::string> words;
  words.reserve(wordCount);
  for (size_t i = 0; i < wordCount; ++i) {
    words.push_back(wordAt(rng.weighted(weights)));
  }
  return strings::join(words, " ");
}

uint64_t writeWordsSnapshot(const std::string& path, size_t wordCount,
                            size_t vocabulary, uint64_t seed) {
  if (vocabulary == 0) throw Error("writeWordsSnapshot: empty vocabulary");
  Rng rng(seed);
  // Identical draw sequence to generateText: same weights, same picks.
  std::vector<double> weights(vocabulary);
  for (size_t r = 0; r < vocabulary; ++r) {
    weights[r] = 1.0 / static_cast<double>(r + 1);
  }
  persist::DatasetWriter writer(path);
  for (size_t i = 0; i < wordCount; ++i) {
    writer.append(blocks::Value(wordAt(rng.weighted(weights))));
  }
  writer.commit();
  return writer.count();
}

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> out = strings::splitWhitespace(text);
  for (std::string& word : out) word = strings::toLower(word);
  return out;
}

std::map<std::string, size_t> referenceWordCount(const std::string& text) {
  std::map<std::string, size_t> counts;
  for (const std::string& word : tokenize(text)) ++counts[word];
  return counts;
}

}  // namespace psnap::data
