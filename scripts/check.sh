#!/usr/bin/env bash
# Full pre-merge check: build and test the release, asan, and tsan
# presets.
#
# Usage: scripts/check.sh [preset...]
#   With no arguments, runs all three presets. Pass `release`, `asan`,
#   or `tsan` to run a subset. Build trees land in build-<preset>/
#   (gitignored).
#
# Usage: scripts/check.sh --bench-smoke
#   Builds the release preset and runs every bench_* binary at a tiny
#   size (gbench benches get --benchmark_min_time=0.01; the custom-main
#   benches get their --quick/--smoke modes). Fails if any bench
#   crashes or exits non-zero — a cheap guard that the measured code
#   paths still run, without caring about the numbers.
#
# Usage: scripts/check.sh --chaos [seed...]
#   Builds the asan and tsan presets and sweeps the seeded chaos suite
#   (GTEST_FILTER='Chaos*' in test_workers) under both sanitizers, once
#   per seed (default seeds: 11 23 97; each run also covers the suite's
#   built-in seeds 1/7/42 via PSNAP_CHAOS_SEED). This is the fault
#   model's gate: injected task throws, worker stalls, transfer
#   failures, and pool saturation must converge — exact results or typed
#   substrate errors — with no data race or memory error underneath.
#
# Usage: scripts/check.sh --native
#   Builds the asan preset and runs the native-tier suites (test_native:
#   the promotion pipeline, golden byte-identical rings, compile-failure
#   chaos) under AddressSanitizer — the dlopen'd kernels, the marshalling
#   buffers, and the async install path must be memory-clean. Skips
#   gracefully (exit 0 with a notice) when no C compiler is on PATH,
#   since the tier itself degrades to the interpreter there.
#
# Usage: scripts/check.sh --persist
#   Builds the asan preset and runs the persistence suites (test_persist:
#   snapshot round-trips, mmap aliasing, the property sweep, and the
#   SnapshotWriteFailure/MmapFailure + corrupt-file chaos tests) under
#   AddressSanitizer — the placement-imaged slots, text fixups, and
#   mapping lifetimes must be memory-clean. Then smoke-runs bench_persist
#   (release preset, --smoke) so the measured cold-open path stays alive.
#
# Usage: scripts/check.sh --serve [seed...]
#   The multi-tenant analogue of --chaos: builds the asan and tsan
#   presets and sweeps the serving-layer chaos suite
#   (GTEST_FILTER='ServeChaos*' in test_serve) under both sanitizers,
#   once per seed (same defaults as --chaos). The gate here is fault
#   *isolation*: admission faults reject typed, a fault aimed at one
#   tenant degrades or fails that tenant alone, and every other session
#   completes with its exact output — race- and leak-free underneath.
#
# Usage: scripts/check.sh --supervise [seed...]
#   The recovery gate: builds the asan preset and sweeps the supervision
#   suites (Supervise* + SuperviseChaos* in test_serve) once per seed,
#   covering checkpoint write failures, restart storms, recovery
#   corruption with generation fallback, the seeded random-kill property
#   sweep, and the fork+SIGKILL crash-kill test (a real dead writer, a
#   real successor, byte-identical recovered outputs). Also runs the
#   suites once under tsan (the pooled checkpoint writes and the
#   stats-lease registry are the concurrency surface), then smoke-runs
#   bench_supervise so the measured checkpoint/recovery paths stay
#   alive.
#
# The asan test preset sets ASAN_OPTIONS=detect_leaks=0: rings are
# shared_ptr closures over their defining environment, so storing a ring
# into a variable of that environment forms a reference cycle (Snap!
# itself relies on the JS garbage collector here). ASan/UBSan error
# detection stays fully on; only end-of-process leak accounting is off.
#
# The tsan preset builds and runs only the concurrency-bearing suites
# (test_workers, test_mapreduce, test_sched, test_serve, test_async) — the
# interpreter suites
# are single-threaded and would just multiply the ~10x tsan slowdown.
# src/workers and src/mapreduce also compile with -Werror in every
# preset, so the substrate stays warning-clean by contract.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

if [ "${1:-}" = "--bench-smoke" ]; then
  cmake --preset release
  cmake --build --preset release -j "${jobs}"
  scratch=$(mktemp -d)
  trap 'rm -rf "${scratch}"' EXIT
  status=0
  for bin in build-release/bench/bench_*; do
    [ -x "${bin}" ] || continue
    name=$(basename "${bin}")
    case "${name}" in
      bench_parallel_substrate)
        args=(--quick --out "${scratch}/${name}.json") ;;
      bench_value_plane)
        args=(--smoke --out "${scratch}/${name}.json") ;;
      bench_serve)
        args=(--quick --out "${scratch}/${name}.json") ;;
      bench_async)
        args=(--quick --out "${scratch}/${name}.json") ;;
      bench_native)
        args=(--quick --out "${scratch}/${name}.json") ;;
      bench_persist)
        args=(--smoke --out "${scratch}/${name}.json") ;;
      bench_supervise)
        args=(--quick --out "${scratch}/${name}.json") ;;
      *)
        args=(--benchmark_min_time=0.01) ;;
    esac
    echo "== bench smoke: ${name} =="
    if ! "${bin}" "${args[@]}" > "${scratch}/${name}.log" 2>&1; then
      echo "!! ${name} failed; last lines:"
      tail -n 20 "${scratch}/${name}.log"
      status=1
    fi
  done
  if [ "${status}" -eq 0 ]; then
    echo "== bench smoke green =="
  fi
  exit "${status}"
fi

if [ "${1:-}" = "--chaos" ]; then
  shift
  seeds=("$@")
  if [ ${#seeds[@]} -eq 0 ]; then
    seeds=(11 23 97)
  fi
  for preset in asan tsan; do
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "${jobs}" --target test_workers
    for seed in "${seeds[@]}"; do
      echo "== chaos: ${preset}, seed ${seed} =="
      # Same leak-accounting stance as the asan ctest preset (see header).
      ASAN_OPTIONS=detect_leaks=0 PSNAP_CHAOS_SEED="${seed}" \
        "build-${preset}/tests/test_workers" \
        --gtest_filter='Chaos*'
    done
  done
  echo "== chaos sweep green: seeds ${seeds[*]} under asan + tsan =="
  exit 0
fi

if [ "${1:-}" = "--native" ]; then
  if ! command -v cc >/dev/null 2>&1 && ! command -v gcc >/dev/null 2>&1; then
    echo "== native sweep skipped: no C compiler on PATH =="
    exit 0
  fi
  cmake --preset asan
  cmake --build --preset asan -j "${jobs}" --target test_native
  echo "== native tier: asan =="
  # Same leak-accounting stance as the asan ctest preset (see header).
  ASAN_OPTIONS=detect_leaks=0 "build-asan/tests/test_native"
  echo "== native tier sweep green under asan =="
  exit 0
fi

if [ "${1:-}" = "--persist" ]; then
  cmake --preset asan
  cmake --build --preset asan -j "${jobs}" --target test_persist
  echo "== persist: asan =="
  # Same leak-accounting stance as the asan ctest preset (see header).
  ASAN_OPTIONS=detect_leaks=0 "build-asan/tests/test_persist"
  cmake --preset release
  cmake --build --preset release -j "${jobs}" --target bench_persist
  scratch=$(mktemp -d)
  trap 'rm -rf "${scratch}"' EXIT
  echo "== persist: bench smoke =="
  build-release/bench/bench_persist --smoke --out "${scratch}/persist.json"
  echo "== persist sweep green: asan + chaos + bench smoke =="
  exit 0
fi

if [ "${1:-}" = "--serve" ]; then
  shift
  seeds=("$@")
  if [ ${#seeds[@]} -eq 0 ]; then
    seeds=(11 23 97)
  fi
  for preset in asan tsan; do
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "${jobs}" --target test_serve
    for seed in "${seeds[@]}"; do
      echo "== serve chaos: ${preset}, seed ${seed} =="
      # Same leak-accounting stance as the asan ctest preset (see header).
      ASAN_OPTIONS=detect_leaks=0 PSNAP_CHAOS_SEED="${seed}" \
        "build-${preset}/tests/test_serve" \
        --gtest_filter='ServeChaos*'
    done
  done
  echo "== serve chaos sweep green: seeds ${seeds[*]} under asan + tsan =="
  exit 0
fi

if [ "${1:-}" = "--supervise" ]; then
  shift
  seeds=("$@")
  if [ ${#seeds[@]} -eq 0 ]; then
    seeds=(11 23 97)
  fi
  cmake --preset asan
  cmake --build --preset asan -j "${jobs}" --target test_serve
  for seed in "${seeds[@]}"; do
    echo "== supervise: asan, seed ${seed} =="
    # Same leak-accounting stance as the asan ctest preset (see header).
    ASAN_OPTIONS=detect_leaks=0 PSNAP_CHAOS_SEED="${seed}" \
      "build-asan/tests/test_serve" \
      --gtest_filter='Supervise*:SuperviseChaos*'
  done
  cmake --preset tsan
  cmake --build --preset tsan -j "${jobs}" --target test_serve
  echo "== supervise: tsan =="
  "build-tsan/tests/test_serve" --gtest_filter='Supervise*:SuperviseChaos*'
  cmake --preset release
  cmake --build --preset release -j "${jobs}" --target bench_supervise
  scratch=$(mktemp -d)
  trap 'rm -rf "${scratch}"' EXIT
  echo "== supervise: bench smoke =="
  build-release/bench/bench_supervise --quick --out "${scratch}/supervise.json"
  echo "== supervise sweep green: seeds ${seeds[*]} under asan," \
    "tsan, bench smoke =="
  exit 0
fi

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(release asan tsan)
fi

for preset in "${presets[@]}"; do
  echo "== preset: ${preset} =="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
done

echo "== all presets green: ${presets[*]} =="
