#!/usr/bin/env bash
# Full pre-merge check: build and test the release and asan presets.
#
# Usage: scripts/check.sh [preset...]
#   With no arguments, runs both presets. Pass `release` or `asan` to
#   run just one. Build trees land in build-<preset>/ (gitignored).
#
# The asan test preset sets ASAN_OPTIONS=detect_leaks=0: rings are
# shared_ptr closures over their defining environment, so storing a ring
# into a variable of that environment forms a reference cycle (Snap!
# itself relies on the JS garbage collector here). ASan/UBSan error
# detection stays fully on; only end-of-process leak accounting is off.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(release asan)
fi

for preset in "${presets[@]}"; do
  echo "== preset: ${preset} =="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
done

echo "== all presets green: ${presets[*]} =="
